"""Typed request/response schemas for the ``repro.service`` HTTP API.

Every payload crossing the wire has a dataclass here with structural
validation (no external JSON-Schema dependency — same discipline as
:mod:`repro.telemetry.schema`): validators return a list of
human-readable error strings, empty meaning valid, so one bad request
reports every problem at once.  The orchestrator, the stdlib HTTP
handler, the urllib client and the CLI all speak exclusively through
these types; raw dicts stop at the (de)serialization boundary.

Wire format summary (see docs/SERVICE.md for the full API):

* ``POST /jobs`` — :class:`JobRequest` → 201 :class:`SubmitResponse`,
  400 :class:`ErrorResponse` (validation), 429 (queue full, with
  ``Retry-After``), 503 (draining);
* ``GET /jobs/<id>`` — :class:`JobStatus` (state machine ``queued →
  running → complete | failed | cancelled`` plus progress counters);
* ``GET /jobs/<id>/results`` — streaming JSONL, one
  :class:`CellResult` per line as cells settle;
* ``POST /jobs/<id>/cancel`` — :class:`JobStatus`;
* ``GET /healthz`` — :class:`Health`.
"""

from __future__ import annotations

import json
import numbers
from dataclasses import asdict, dataclass, field

#: Job state machine.  ``queued`` jobs have registered cells but no
#: completed work yet; ``running`` jobs have at least one settled cell.
JOB_STATES = ("queued", "running", "complete", "failed", "cancelled")

TERMINAL_JOB_STATES = ("complete", "failed", "cancelled")

#: Sweep variants a job may request (the design points of the paper's
#: fig7-style grids plus the ablation/expert variants).
KNOWN_VARIANTS = ("baseline", "sdc_lp", "topt", "distill", "l1iso",
                  "llc2x", "expert", "expert_best", "victim",
                  "lp_bypass")

KNOWN_TIERS = ("tiny", "small", "medium", "large")

KNOWN_BACKENDS = ("ref", "batch")

JOB_KINDS = ("sweep", "merge")


def _expect(errors: list[str], cond: bool, message: str) -> bool:
    if not cond:
        errors.append(message)
    return cond


def _is_num(v) -> bool:
    return isinstance(v, numbers.Real) and not isinstance(v, bool)


@dataclass(frozen=True)
class JobRequest:
    """One submitted job.

    ``kind="sweep"`` runs a fig7-shaped grid — ``workloads`` ×
    (``"baseline"`` + ``variants``) cells through the engine's
    manifest/cache machinery, byte-identical to the same sweep via the
    CLI.  ``workloads`` is an explicit list of ``kernel.graph`` names
    or the literal ``"quick"`` (the CLI's 6-workload subset); ``None``
    means all 36.  ``kind="merge"`` waits (``watch_timeout`` seconds)
    until every shard of ``run_id`` reports complete, then validates
    and stitches them — ``repro merge --watch`` as a service job.
    """

    kind: str = "sweep"
    workloads: object = "quick"         # list[str] | "quick" | None
    variants: tuple = ()                # () -> default fig7 variants
    tier: str = "tiny"
    length: int = 20_000
    backend: str | None = None          # None -> engine default
    run_id: str | None = None           # merge jobs: the sharded run
    watch_timeout: float | None = None  # merge jobs: wait bound (s)

    def to_dict(self) -> dict:
        d = asdict(self)
        d["variants"] = list(self.variants)
        return d

    @classmethod
    def from_dict(cls, obj: dict) -> "JobRequest":
        errors = validate_job_request(obj)
        if errors:
            raise ValueError("; ".join(errors))
        return cls(kind=obj.get("kind", "sweep"),
                   workloads=obj.get("workloads", "quick"),
                   variants=tuple(obj.get("variants") or ()),
                   tier=obj.get("tier", "tiny"),
                   length=int(obj.get("length", 20_000)),
                   backend=obj.get("backend"),
                   run_id=obj.get("run_id"),
                   watch_timeout=obj.get("watch_timeout"))


def validate_job_request(obj) -> list[str]:
    """Structural validation of a ``POST /jobs`` body."""
    errors: list[str] = []
    if not _expect(errors, isinstance(obj, dict),
                   "request body: not a JSON object"):
        return errors
    kind = obj.get("kind", "sweep")
    if not _expect(errors, kind in JOB_KINDS,
                   f"kind: {kind!r} not one of {', '.join(JOB_KINDS)}"):
        return errors
    if kind == "merge":
        _expect(errors, isinstance(obj.get("run_id"), str)
                and obj.get("run_id"),
                "run_id: merge jobs need the sharded run id")
        wt = obj.get("watch_timeout")
        _expect(errors, wt is None or (_is_num(wt) and wt > 0),
                "watch_timeout: must be a positive number of seconds")
        return errors
    wls = obj.get("workloads", "quick")
    if wls is not None and wls != "quick":
        if _expect(errors, isinstance(wls, list) and wls
                   and all(isinstance(w, str) for w in wls),
                   "workloads: expected 'quick', null, or a non-empty "
                   "list of kernel.graph names"):
            for w in wls:
                _expect(errors, "." in w,
                        f"workloads: {w!r} is not a kernel.graph name")
    variants = obj.get("variants") or []
    if _expect(errors, isinstance(variants, (list, tuple)),
               "variants: expected a list of variant names"):
        for v in variants:
            _expect(errors, v in KNOWN_VARIANTS,
                    f"variants: unknown variant {v!r} (expected one "
                    f"of {', '.join(KNOWN_VARIANTS)})")
    tier = obj.get("tier", "tiny")
    _expect(errors, tier in KNOWN_TIERS,
            f"tier: {tier!r} not one of {', '.join(KNOWN_TIERS)}")
    length = obj.get("length", 20_000)
    _expect(errors, isinstance(length, int)
            and not isinstance(length, bool) and length > 0,
            "length: must be a positive integer (accesses)")
    backend = obj.get("backend")
    _expect(errors, backend is None or backend in KNOWN_BACKENDS,
            f"backend: {backend!r} not one of "
            f"{', '.join(KNOWN_BACKENDS)}")
    return errors


@dataclass
class JobProgress:
    """Per-cell progress counters for one job (unique cells)."""

    total: int = 0
    done: int = 0           # settled with a result (run or cache)
    cached: int = 0         # subset of done served from the warm cache
    running: int = 0        # currently leased to a worker
    pending: int = 0        # waiting for a lease (incl. backoff)
    failed: int = 0         # retry budget spent
    cancelled: int = 0

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class JobStatus:
    """``GET /jobs/<id>`` response: the job's typed state snapshot."""

    job_id: str
    state: str                          # one of JOB_STATES
    kind: str = "sweep"
    progress: JobProgress = field(default_factory=JobProgress)
    submitted: float | None = None      # epoch seconds
    started: float | None = None
    finished: float | None = None
    error: str | None = None
    request: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        d = asdict(self)
        d["progress"] = self.progress.to_dict()
        return d

    @classmethod
    def from_dict(cls, obj: dict) -> "JobStatus":
        errors = validate_job_status(obj)
        if errors:
            raise ValueError("; ".join(errors))
        progress = JobProgress(**obj.get("progress", {}))
        return cls(job_id=obj["job_id"], state=obj["state"],
                   kind=obj.get("kind", "sweep"), progress=progress,
                   submitted=obj.get("submitted"),
                   started=obj.get("started"),
                   finished=obj.get("finished"),
                   error=obj.get("error"),
                   request=obj.get("request", {}))


def validate_job_status(obj) -> list[str]:
    errors: list[str] = []
    if not _expect(errors, isinstance(obj, dict),
                   "job status: not a JSON object"):
        return errors
    _expect(errors, isinstance(obj.get("job_id"), str),
            "job_id: missing or not a string")
    state = obj.get("state")
    _expect(errors, state in JOB_STATES,
            f"state: {state!r} not one of {', '.join(JOB_STATES)}")
    progress = obj.get("progress", {})
    if _expect(errors, isinstance(progress, dict),
               "progress: not a JSON object"):
        known = set(JobProgress().to_dict())
        for k, v in progress.items():
            _expect(errors, k in known,
                    f"progress: unknown counter {k!r}")
            _expect(errors, isinstance(v, int)
                    and not isinstance(v, bool),
                    f"progress: counter {k!r} not an integer")
    return errors


@dataclass
class SubmitResponse:
    """``POST /jobs`` acceptance."""

    job_id: str
    state: str
    cells: int                          # unique cells registered
    run_id: str                         # manifest id (== job_id)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, obj: dict) -> "SubmitResponse":
        for f in ("job_id", "state", "cells", "run_id"):
            if f not in obj:
                raise ValueError(f"submit response missing {f!r}")
        return cls(job_id=obj["job_id"], state=obj["state"],
                   cells=obj["cells"], run_id=obj["run_id"])


@dataclass
class CellResult:
    """One line of the ``GET /jobs/<id>/results`` JSONL feed."""

    key: str
    label: str
    status: str                         # done | failed | cancelled
    source: str | None = None           # run | cache
    attempts: int = 0
    seconds: float | None = None
    payload_sha: str | None = None      # results-cache envelope hash
    error: str | None = None

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class Health:
    """``GET /healthz`` response."""

    status: str                         # "ok" | "draining"
    generation: int
    workers: int
    jobs: dict = field(default_factory=dict)    # state -> count

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class ErrorResponse:
    """Any non-2xx body: a machine-readable error plus details."""

    error: str
    detail: list = field(default_factory=list)
    retry_after: float | None = None

    def to_dict(self) -> dict:
        d = {"error": self.error, "detail": list(self.detail)}
        if self.retry_after is not None:
            d["retry_after"] = self.retry_after
        return d


def dumps(obj) -> bytes:
    """Canonical wire encoding for any schema object or plain dict."""
    if hasattr(obj, "to_dict"):
        obj = obj.to_dict()
    return json.dumps(obj, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
