"""urllib client for the ``repro.service`` HTTP API.

Typed, stdlib-only (mirrors the server: no new dependencies).  Every
method returns the schema objects of :mod:`repro.service.schemas`;
HTTP errors surface as :class:`ServiceError` carrying the status code
and the server's :class:`~repro.service.schemas.ErrorResponse` body,
with 429 backpressure honoured transparently by
:meth:`ServiceClient.submit` (bounded ``Retry-After`` waits).

The CLI's ``repro submit|status|cancel`` subcommands are thin wrappers
over this class; tests drive it against an in-process server.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.service.schemas import (JobRequest, JobStatus,
                                   SubmitResponse, dumps)


class ServiceError(RuntimeError):
    """A non-2xx API response."""

    def __init__(self, code: int, error: str, detail=(),
                 retry_after: float | None = None):
        super().__init__(f"HTTP {code}: {error}")
        self.code = code
        self.error = error
        self.detail = list(detail)
        self.retry_after = retry_after


class ServiceClient:
    """One orchestrator endpoint, e.g. ``http://127.0.0.1:8421``."""

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(self, method: str, path: str, body=None) -> dict:
        data = dumps(body) if body is not None else None
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"}
            if data else {})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) \
                    as resp:
                return json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except ValueError:
                payload = {}
            raise ServiceError(
                exc.code, payload.get("error", exc.reason),
                payload.get("detail", ()),
                payload.get("retry_after")) from None

    # -- API ---------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, request: JobRequest, max_retries: int = 0
               ) -> SubmitResponse:
        """POST the job; with ``max_retries`` > 0, 429 backpressure is
        absorbed by waiting the server's ``Retry-After`` hint."""
        attempt = 0
        while True:
            try:
                obj = self._request("POST", "/jobs",
                                    request.to_dict())
            except ServiceError as exc:
                if exc.code == 429 and attempt < max_retries:
                    attempt += 1
                    time.sleep(exc.retry_after or 1.0)
                    continue
                raise
            return SubmitResponse.from_dict(obj)

    def status(self, job_id: str) -> JobStatus:
        return JobStatus.from_dict(
            self._request("GET", f"/jobs/{job_id}"))

    def list_jobs(self) -> list[JobStatus]:
        obj = self._request("GET", "/jobs")
        return [JobStatus.from_dict(j) for j in obj.get("jobs", ())]

    def cancel(self, job_id: str) -> JobStatus:
        return JobStatus.from_dict(
            self._request("POST", f"/jobs/{job_id}/cancel"))

    def drain(self) -> dict:
        return self._request("POST", "/drain")

    def results(self, job_id: str, follow: bool = False,
                timeout: float | None = None) -> list[dict]:
        """Fetch the JSONL result feed; ``follow=True`` streams until
        the job is terminal (or ``timeout`` seconds pass)."""
        suffix = "?follow=1" if follow else ""
        req = urllib.request.Request(
            f"{self.base_url}/jobs/{job_id}/results{suffix}")
        out = []
        with urllib.request.urlopen(
                req, timeout=timeout or self.timeout) as resp:
            if resp.status != 200:
                raise ServiceError(resp.status, "results fetch failed")
            for line in resp:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.25) -> JobStatus:
        """Poll until the job reaches a terminal state."""
        from repro.service.schemas import TERMINAL_JOB_STATES
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status.state in TERMINAL_JOB_STATES:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status.state!r} after "
                    f"{timeout:g}s")
            time.sleep(poll)
