"""Service worker process: lease-scoped cell execution with heartbeats.

Each worker is a separate OS process spawned by the orchestrator with a
private task queue and a shared result queue.  Protocol (all messages
are plain tuples, first element the message name)::

    worker -> orchestrator
        ("ready",     wid)                       # idle, dispatch to me
        ("started",   wid, key, token)           # picked up a task
        ("heartbeat", wid)                       # liveness, every ttl/4
        ("done",      wid, key, token, payload)  # cell result
        ("error",     wid, key, token, errstr)   # cell raised

    orchestrator -> worker (task queue)
        (key, spec, attempt, token)              # execute one cell
        None                                     # drain: exit cleanly

The heartbeat comes from a daemon thread, so it keeps flowing while the
main thread simulates a long cell — worker *death* (crash, the
``worker_vanish`` fault, OOM-kill) silences it, which is what the
orchestrator's lease TTL detects.  A *hung* cell keeps heartbeating by
design; hang detection is the orchestrator's per-cell deadline
(``RunPolicy.timeout``), mirroring ``run_grid``'s hung-worker handling.

Cells execute through :func:`repro.experiments.parallel._execute_cell`
— the exact code path ``run_grid`` workers use — so fault injection
(``crash``/``hang``/``exc``…), telemetry ``cell_exec_*`` events and
payload encoding are identical, and a service-computed result is
byte-identical to the CLI's.
"""

from __future__ import annotations

import os
import threading

from repro import faults
from repro.experiments import parallel
from repro.telemetry import events as tele_events

#: Exit code of a ``worker_vanish`` fault (visible in orchestrator logs;
#: distinct from :data:`repro.faults.CRASH_EXIT_CODE` so a vanished
#: service worker and a crashed pool worker are tellable apart).
VANISH_EXIT_CODE = 174

#: Heartbeat period as a fraction of the lease TTL: four beats per TTL
#: window, so a single dropped message never expires a healthy lease.
HEARTBEAT_FRACTION = 0.25


def worker_main(wid: str, task_q, result_q, lease_ttl: float,
                fault_plan=None, tele_ctx=None) -> None:
    """Run the worker loop until a ``None`` sentinel arrives.

    ``fault_plan``/``tele_ctx`` are the orchestrator's ambient fault
    plan and telemetry context, passed explicitly (as ``run_grid``'s
    pool initializer does) so any multiprocessing start method behaves
    alike.
    """
    faults.worker_init(fault_plan)
    tele_events.worker_init(tele_ctx)
    stop = threading.Event()
    interval = max(0.05, lease_ttl * HEARTBEAT_FRACTION)

    def beat() -> None:
        while not stop.wait(interval):
            try:
                result_q.put(("heartbeat", wid))
            except Exception:
                return      # queue torn down: orchestrator is gone
    threading.Thread(target=beat, name=f"{wid}-heartbeat",
                     daemon=True).start()

    try:
        result_q.put(("ready", wid))
        while True:
            task = task_q.get()
            if task is None:
                break
            key, spec, attempt, token = task
            if faults.worker_vanishes(key, attempt):
                # Silent death: no message, no traceback — the
                # orchestrator must find out via liveness/lease TTL.
                os._exit(VANISH_EXIT_CODE)
            result_q.put(("started", wid, key, token))
            try:
                payload = parallel._execute_cell(spec, key, attempt)
            except BaseException as exc:
                result_q.put(("error", wid, key, token,
                              parallel._errstr(exc)))
            else:
                result_q.put(("done", wid, key, token, payload))
            result_q.put(("ready", wid))
    finally:
        stop.set()
