"""Lease-based work queue: the crash-tolerant core of ``repro.service``.

The queue tracks one :class:`Cell` per unique content-addressed cache
key across every submitted job.  A worker obtains a cell by *claiming a
lease* — an exclusive, time-bounded grant identified by a fencing
``token`` — and must renew the lease (heartbeat) before ``lease_ttl``
elapses.  The state machine per cell::

                      claim                       complete
        pending ───────────────▶ leased ─────────────────────▶ done
           ▲                       │ fail (attempts left)
           │      expire/revoke    │──────────▶ pending (backoff)
           └───────────────────────┘ fail/expire (retries spent)
                                   └──────────▶ failed

Correctness properties (asserted by ``tests/test_service_queue.py``
over arbitrary interleavings of claim/renew/expire/requeue):

* **mutual exclusion** — at most one active lease per cell, ever; a
  claim is only granted on a ``pending`` cell.
* **fencing** — every lease grant carries a strictly increasing token
  (the cell's attempt count), and ``complete``/``fail`` with a stale
  token are rejected, so a worker whose lease was revoked (the
  ``lease_loss`` fault) or expired cannot smuggle in a late result
  after the cell was handed to someone else.
* **no lost cells** — expiry requeues a cell exactly once per lease
  (``attempts`` preserved), and every cell ends ``done``, ``failed``
  or ``cancelled``; nothing is dropped.
* **bounded work** — a cell is leased at most ``1 + retries`` times,
  mirroring :class:`repro.experiments.parallel.RunPolicy`; the backoff
  before a re-claim is the engine's deterministic
  exponential-backoff-with-jitter schedule.

The queue itself is a pure in-memory structure with an injectable
clock (the orchestrator passes ``time.monotonic``); durability comes
from the :class:`Journal` (append-only JSONL under
``$REPRO_CACHE_DIR/service/``) and the per-job run manifests the
orchestrator writes through the same atomic-save path as ``run_grid``
(docs/SERVICE.md § Durability).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.parallel import RunPolicy, _backoff_delay

#: Cell states.  ``cancelled`` is terminal and only reachable while
#: ``pending`` (a leased cell finishes its in-flight attempt; the
#: result is still cached and harmless).
PENDING, LEASED, DONE, FAILED, CANCELLED = (
    "pending", "leased", "done", "failed", "cancelled")

TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass
class Lease:
    """One active, exclusive, time-bounded grant of a cell."""

    worker: str
    token: int                  # fencing token == attempts at grant
    expiry: float               # renewal deadline (queue clock)
    granted: float              # grant time (hang deadline base)


@dataclass
class Cell:
    """One unique unit of work (a content-addressed grid cell)."""

    key: str
    label: str
    jobs: set = field(default_factory=set)      # job ids wanting it
    state: str = PENDING
    attempts: int = 0           # lease grants so far (== last token)
    error: str | None = None
    not_before: float = 0.0     # backoff gate for the next claim
    lease: Lease | None = None


class LeaseQueue:
    """In-memory lease table + FIFO dispatch order (see module doc)."""

    def __init__(self, policy: RunPolicy | None = None,
                 lease_ttl: float = 30.0):
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        self.policy = policy or RunPolicy()
        self.lease_ttl = lease_ttl
        self.cells: dict[str, Cell] = {}        # key -> Cell, FIFO order

    # -- intake ------------------------------------------------------------

    def add(self, job_id: str, key: str, label: str,
            attempts: int = 0) -> Cell:
        """Register one cell for ``job_id``; idempotent across jobs.

        A key already present (another job wants the same cell, or a
        recovery replay) just gains the job membership — its state and
        attempt count are untouched.  ``attempts`` seeds the counter
        for recovered cells so a restarted orchestrator preserves the
        retry budget already spent.
        """
        cell = self.cells.get(key)
        if cell is None:
            cell = Cell(key=key, label=label)
            cell.attempts = attempts
            self.cells[key] = cell
        cell.jobs.add(job_id)
        return cell

    def settle(self, key: str, state: str = DONE) -> None:
        """Force a cell terminal without a lease cycle (recovery found
        its result already in the cache, or intake served it warm)."""
        cell = self.cells[key]
        if cell.state not in TERMINAL:
            cell.state = state
            cell.lease = None

    # -- lease lifecycle ---------------------------------------------------

    def claim(self, worker: str, now: float) -> Cell | None:
        """Grant the oldest claimable cell to ``worker``, or None.

        Claimable: ``pending``, past its backoff gate, with retry
        budget left.  The grant moves the cell to ``leased``, spends
        one attempt, and stamps a fresh fencing token.
        """
        for cell in self.cells.values():
            if cell.state != PENDING or cell.not_before > now:
                continue
            cell.attempts += 1
            cell.state = LEASED
            cell.error = None
            cell.lease = Lease(worker=worker, token=cell.attempts,
                               expiry=now + self.lease_ttl, granted=now)
            return cell
        return None

    def _holds(self, key: str, worker: str, token: int) -> Cell | None:
        """The cell iff ``(worker, token)`` holds its active lease."""
        cell = self.cells.get(key)
        if (cell is None or cell.lease is None
                or cell.lease.worker != worker
                or cell.lease.token != token):
            return None
        return cell

    def renew(self, key: str, worker: str, token: int,
              now: float) -> bool:
        """Heartbeat: extend the lease TTL; False when the lease is no
        longer held (expired, revoked, or re-granted elsewhere)."""
        cell = self._holds(key, worker, token)
        if cell is None:
            return False
        cell.lease.expiry = now + self.lease_ttl
        return True

    def complete(self, key: str, worker: str, token: int) -> bool:
        """Settle a leased cell as done; False for a stale token (the
        late result of a lost lease must be discarded by the caller)."""
        cell = self._holds(key, worker, token)
        if cell is None:
            return False
        cell.state = DONE
        cell.lease = None
        cell.error = None
        return True

    def fail(self, key: str, worker: str, token: int, error: str,
             now: float) -> str:
        """Record a failed attempt under a held lease.

        Returns ``"retry"`` (requeued behind the deterministic backoff
        gate), ``"failed"`` (retry budget spent — terminal), or
        ``"stale"`` (token no longer holds the lease; ignore)."""
        cell = self._holds(key, worker, token)
        if cell is None:
            return "stale"
        return self._release(cell, error, now)

    def _release(self, cell: Cell, error: str, now: float) -> str:
        """Drop the active lease; requeue or fail by retry budget."""
        cell.lease = None
        cell.error = error
        if cell.attempts > self.policy.retries:
            cell.state = FAILED
            return "failed"
        cell.state = PENDING
        cell.not_before = now + _backoff_delay(self.policy, cell.key,
                                               cell.attempts)
        return "retry"

    def expire(self, now: float) -> list[tuple[Cell, str, str]]:
        """Requeue every cell whose lease outlived its TTL.

        Returns ``(cell, disposition, worker)`` triples (disposition
        ``"retry"`` or ``"failed"``) for the orchestrator to journal
        and log.  Each expired lease is released exactly once — the
        cell is already ``pending`` (or ``failed``) on the next sweep.
        """
        out = []
        for cell in self.cells.values():
            if (cell.state == LEASED
                    and cell.lease.expiry <= now):
                worker = cell.lease.worker
                out.append((cell, self._release(
                    cell, f"lease expired (worker {worker} lost)",
                    now), worker))
        return out

    def revoke(self, key: str, reason: str, now: float) -> str | None:
        """Force-release one active lease (``lease_loss`` fault, hung-
        worker kill, dead-worker detection).  Returns the disposition
        (``"retry"``/``"failed"``) or None when nothing was leased."""
        cell = self.cells.get(key)
        if cell is None or cell.state != LEASED:
            return None
        return self._release(cell, reason, now)

    def leases_of(self, worker: str) -> list[Cell]:
        """Cells currently leased to ``worker``."""
        return [c for c in self.cells.values()
                if c.state == LEASED and c.lease.worker == worker]

    # -- job views ---------------------------------------------------------

    def cancel_job(self, job_id: str) -> list[str]:
        """Withdraw ``job_id``: pending cells no other job wants are
        cancelled (terminal); leased cells finish their in-flight
        attempt (the cached result is harmless).  Returns the
        cancelled keys."""
        out = []
        for cell in self.cells.values():
            cell.jobs.discard(job_id)
            if not cell.jobs and cell.state == PENDING:
                cell.state = CANCELLED
                out.append(cell.key)
        return out

    def counts_for(self, job_id: str) -> dict[str, int]:
        out: dict[str, int] = {}
        for cell in self.cells.values():
            if job_id in cell.jobs:
                out[cell.state] = out.get(cell.state, 0) + 1
        return out

    def job_settled(self, job_id: str) -> bool:
        """Every cell of ``job_id`` is terminal."""
        return all(c.state in TERMINAL for c in self.cells.values()
                   if job_id in c.jobs)

    def next_wakeup(self, now: float) -> float | None:
        """Soonest future instant queue state can change on its own (a
        backoff gate opening or a lease TTL expiring); None when idle."""
        soonest = None
        for cell in self.cells.values():
            t = None
            if cell.state == PENDING and cell.not_before > now:
                t = cell.not_before
            elif cell.state == LEASED:
                t = cell.lease.expiry
            if t is not None and (soonest is None or t < soonest):
                soonest = t
        return soonest


# -- durable journal --------------------------------------------------------

class Journal:
    """Append-only JSONL journal of service state transitions.

    One record per line, flushed per append, so a killed orchestrator
    leaves a valid prefix (the torn final line, if any, is skipped on
    replay).  The journal records *service-level* history — startup
    generations, job lifecycle, lease grants/expiries, cell
    settlements — and is replayed on startup alongside the per-job run
    manifests and the results cache, which remain the authoritative
    per-cell state (docs/SERVICE.md § Crash recovery).
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self._fh = None

    def append(self, type_: str, **fields) -> None:
        record = {"ts": time.time(), "type": type_}
        record.update(fields)
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def replay(self) -> list[dict]:
        """Parse every intact record; a torn trailing line (writer died
        mid-append) is dropped, mirroring the event-log readers."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        out = []
        for line in text.splitlines():
            try:
                out.append(json.loads(line))
            except ValueError:
                continue
        return out

    def generation(self) -> int:
        """Startup count recorded so far (the replayed ``generation``
        records) — the ``attempt`` axis of the ``orchestrator_crash``
        fault, so a restarted orchestrator deterministically survives
        a plan that killed its predecessor."""
        return sum(1 for r in self.replay() if r.get("type") == "generation")
