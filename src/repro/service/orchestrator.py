"""Crash-tolerant job orchestrator: sweep jobs as a long-running service.

One :class:`Orchestrator` owns the durable state under
``$REPRO_CACHE_DIR/service/`` — the queue :class:`~repro.service.queue.
Journal`, per-job records (``jobs/<id>.json``, atomic writes), and the
JSONL result feeds (``feeds/<id>.jsonl``) — plus a pool of worker
processes (:mod:`repro.service.worker`) executing cells through the
exact ``run_grid`` worker code path.  Every simulated byte still flows
through the proven manifest/results-cache machinery: a job's cells are
compiled with :func:`repro.experiments.parallel._job_spec`, so their
content-addressed keys — and therefore their cached payloads — are
byte-identical to the same sweep run via the CLI.

Robustness model (docs/SERVICE.md):

* **lease-based claims** — a worker holds one cell at a time under a
  TTL'd lease (fencing token = attempt number) renewed by heartbeat;
  a crashed/vanished worker's lease expires and its cell is requeued
  exactly once with the attempt count preserved and the engine's
  deterministic backoff, bounded by ``RunPolicy.retries``;
* **orchestrator crash recovery** — startup replays the queue journal
  (generation count, job registry) and re-opens each active job's run
  manifest (``runs/<job_id>.service.json``); cells whose results are
  already in the cache are settled without re-simulation, mirroring
  ``--resume``, and only the remainder is requeued;
* **graceful drain** — SIGTERM (via :meth:`request_drain`) stops
  leasing, lets in-flight cells finish, checkpoints, folds worker
  telemetry shards, and returns cleanly;
* **backpressure** — submissions beyond ``queue_depth`` active jobs
  raise :class:`QueueFull`, which the HTTP layer maps to ``429`` with
  ``Retry-After``.

Faults ``worker_vanish`` / ``lease_loss`` / ``orchestrator_crash``
(:mod:`repro.faults`) exercise each path deterministically.
"""

from __future__ import annotations

import os
import queue as stdlib_queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults
from repro.experiments import parallel
from repro.experiments import results_cache as rc
from repro.experiments.manifest import RunManifest
from repro.experiments.runner import default_config
from repro.experiments.workloads import WORKLOADS, cache_dir
from repro.service import schemas
from repro.service import worker as service_worker
from repro.service.queue import (CANCELLED, DONE, FAILED, LEASED,
                                 PENDING, Journal, LeaseQueue)
from repro.service.schemas import (CellResult, Health, JobProgress,
                                   JobRequest, JobStatus, SubmitResponse)
from repro.telemetry import events as tele_events

#: Telemetry run id of the service's event log: one ``events-service
#: .jsonl`` per telemetry directory, appended across orchestrator
#: generations, so a crash/restart leaves a single auditable history.
SERVICE_RUN_ID = "service"

#: ``Retry-After`` seconds suggested to clients bounced by backpressure.
RETRY_AFTER_SECONDS = 5.0


class QueueFull(RuntimeError):
    """Submission refused: too many active jobs (HTTP 429)."""

    retry_after = RETRY_AFTER_SECONDS


class Draining(RuntimeError):
    """Submission refused: the orchestrator is draining (HTTP 503)."""


class UnknownJob(KeyError):
    """No such job id (HTTP 404)."""


@dataclass
class ServiceConfig:
    """Tunables of one orchestrator instance."""

    host: str = "127.0.0.1"
    port: int = 0                       # 0 = ephemeral
    workers: int = 2
    queue_depth: int = 16               # max active (queued+running) jobs
    lease_ttl: float = 15.0
    policy: parallel.RunPolicy = field(
        default_factory=parallel.RunPolicy)
    telemetry_dir: Path | None = None
    hard_crash: bool = False            # orchestrator_crash: os._exit


def service_dir() -> Path:
    return cache_dir() / "service"


def new_job_id() -> str:
    return (time.strftime("job-%Y%m%d-%H%M%S-")
            + uuid.uuid4().hex[:6])


@dataclass
class _Job:
    """In-memory job state (durable twin: ``jobs/<id>.json``)."""

    id: str
    request: JobRequest
    state: str = "queued"
    submitted: float = 0.0
    started: float | None = None
    finished: float | None = None
    error: str | None = None
    keys: list[str] = field(default_factory=list)   # unique, grid order
    labels: dict = field(default_factory=dict)      # key -> label
    cached_keys: set = field(default_factory=set)   # warm at intake
    manifest: RunManifest | None = None
    progress_snapshot: JobProgress | None = None    # frozen at finish


@dataclass
class _Worker:
    wid: str
    proc: object
    task_q: object
    last_beat: float
    ready: bool = False
    current: tuple | None = None        # (key, token) while executing


class Orchestrator:
    """See module docstring.  Thread-safety: the HTTP handler threads
    and the scheduler loop share ``self._lock``; worker processes only
    touch the multiprocessing queues."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self._lock = threading.RLock()
        self._dir = service_dir()
        self._jobs_dir = self._dir / "jobs"
        self._feeds_dir = self._dir / "feeds"
        for d in (self._jobs_dir, self._feeds_dir):
            d.mkdir(parents=True, exist_ok=True)
        self.journal = Journal(self._dir / "journal.jsonl")
        self.generation = self.journal.generation() + 1
        self.queue = LeaseQueue(policy=self.config.policy,
                                lease_ttl=self.config.lease_ttl)
        self.cache = rc.ResultsCache()
        self.jobs: dict[str, _Job] = {}
        self.events: tele_events.EventLog | None = None
        self._tele_ctx = None
        if self.config.telemetry_dir is not None:
            tdir = Path(self.config.telemetry_dir)
            self.events = tele_events.EventLog(tdir, SERVICE_RUN_ID)
            self._tele_ctx = (str(tdir), SERVICE_RUN_ID, None)
        self._mp = __import__("multiprocessing").get_context()
        self._result_q = self._mp.Queue()
        self._workers: dict[str, _Worker] = {}
        self._worker_seq = 0
        self._draining = False
        self._stopped = False
        self._http = None               # set by repro.service.api
        self._merge_threads: list[threading.Thread] = []
        self.journal.append("generation", generation=self.generation)
        self._emit("service_started", generation=self.generation,
                   workers=self.config.workers)
        self._recover()

    # -- telemetry ---------------------------------------------------------

    def _emit(self, event: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(event, **fields)

    # -- durable job records -----------------------------------------------

    def _job_path(self, job_id: str) -> Path:
        return self._jobs_dir / f"{job_id}.json"

    def _save_job(self, job: _Job) -> None:
        import json
        data = {"id": job.id, "state": job.state,
                "request": job.request.to_dict(),
                "submitted": job.submitted, "started": job.started,
                "finished": job.finished, "error": job.error,
                "cells_total": len(job.keys)}
        if job.progress_snapshot is not None:
            data["progress"] = job.progress_snapshot.to_dict()
        path = self._job_path(job.id)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(data, fh, indent=1)
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    def _feed(self, job: _Job, result: CellResult) -> None:
        import json
        path = self._feeds_dir / f"{job.id}.jsonl"
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(result.to_dict(),
                                separators=(",", ":")) + "\n")
            fh.flush()

    def feed_path(self, job_id: str) -> Path:
        return self._feeds_dir / f"{job_id}.jsonl"

    # -- intake ------------------------------------------------------------

    def _compile_sweep(self, req: JobRequest) -> list[parallel.Job]:
        """The same grid the CLI builds for a fig7-style sweep, so the
        cells' content-addressed keys match the CLI's exactly."""
        from repro.cli import QUICK_WORKLOADS
        from repro.experiments.figures import SINGLE_CORE_VARIANTS
        if req.workloads == "quick":
            wls = list(QUICK_WORKLOADS)
        elif req.workloads is None:
            wls = [w.name for w in WORKLOADS]
        else:
            wls = list(req.workloads)
        known = {w.name for w in WORKLOADS}
        unknown = [w for w in wls if w not in known]
        if unknown:
            raise ValueError("unknown workload(s): "
                             + ", ".join(sorted(unknown)))
        variants = tuple(req.variants) or SINGLE_CORE_VARIANTS
        all_variants = ("baseline",) + tuple(
            v for v in variants if v != "baseline")
        cfg = default_config()
        return [parallel.Job(wl, v, cfg, req.tier, req.length)
                for wl in wls for v in all_variants]

    def submit(self, req: JobRequest) -> SubmitResponse:
        """Register one job; cheap cells (warm cache) settle inline.

        Raises :class:`Draining`, :class:`QueueFull`, or ``ValueError``
        (bad request content) — the HTTP layer maps each to its status
        code.
        """
        with self._lock:
            if self._draining or self._stopped:
                raise Draining("orchestrator is draining; resubmit "
                               "after restart")
            active = sum(1 for j in self.jobs.values()
                         if j.state in ("queued", "running"))
            if active >= self.config.queue_depth:
                raise QueueFull(
                    f"queue depth {self.config.queue_depth} reached "
                    f"({active} active job(s)); retry after "
                    f"{RETRY_AFTER_SECONDS:g}s")
            job = _Job(id=new_job_id(), request=req,
                       submitted=time.time())
            if req.kind == "merge":
                return self._submit_merge(job)
            grid = self._compile_sweep(req)     # ValueError on bad wl
            from repro.core.batch import resolve_backend
            backend = resolve_backend(req.backend)
            self._register_cells(job, grid, backend)
            self.jobs[job.id] = job
            self.journal.append("job_submitted", job_id=job.id,
                                cells=len(job.keys))
            self._emit("job_submitted", job_id=job.id,
                       cells=len(job.keys))
            self._save_job(job)
            self._check_job_done(job)
            return SubmitResponse(job_id=job.id, state=job.state,
                                  cells=len(job.keys), run_id=job.id)

    def _register_cells(self, job: _Job, grid: list[parallel.Job],
                        backend: str, resumed: bool = False) -> None:
        """Compile the grid to unique cells, probe the cache, seed the
        queue and the job's service manifest (``run_grid``'s intake,
        minus in-grid execution)."""
        job.manifest = RunManifest.open(job.id, service=True)
        fanout: dict[str, int] = {}
        order: list[tuple[str, str]] = []       # (key, label) unique
        for cell in grid:
            spec, key = parallel._job_spec(cell, 0, backend)
            if key not in fanout:
                order.append((key, cell.label))
                self._specs[key] = spec
            fanout[key] = fanout.get(key, 0) + 1
        for key, label in order:
            job.keys.append(key)
            job.labels[key] = label
            prior = job.manifest.cells.get(key, {})
            attempts = prior.get("attempts", 0) if resumed else 0
            hit = self.cache.get(key)
            if hit is not None:
                job.cached_keys.add(key)
                self.queue.add(job.id, key, label, attempts=attempts)
                self.queue.settle(key, DONE)
                job.manifest.register(key, label, status="done",
                                      source="cache",
                                      fanout=fanout[key])
                self._emit("cell_cached", key=key, label=label)
                self._feed(job, CellResult(
                    key=key, label=label, status="done",
                    source="cache", attempts=attempts,
                    payload_sha=rc.payload_checksum(hit)))
                continue
            if resumed and prior.get("status") == "failed":
                # Retry budget already spent before the crash; keep it.
                self.queue.add(job.id, key, label, attempts=attempts)
                self.queue.settle(key, FAILED)
                self.queue.cells[key].error = prior.get("error")
                job.manifest.register(key, label, status="failed",
                                      fanout=fanout[key])
                job.manifest.cells[key]["attempts"] = attempts
                job.manifest.cells[key]["error"] = prior.get("error")
                continue
            self.queue.add(job.id, key, label, attempts=attempts)
            job.manifest.register(key, label, fanout=fanout[key])
            job.manifest.cells[key]["attempts"] = attempts
            self._emit("cell_queued", key=key, label=label)
        job.manifest.save()

    def _submit_merge(self, job: _Job) -> SubmitResponse:
        """A ``repro merge --watch`` as a service job: a watcher thread
        polls until every shard reports complete, then stitches."""
        self.jobs[job.id] = job
        self.journal.append("job_submitted", job_id=job.id, cells=0,
                            kind="merge", run_id=job.request.run_id)
        self._emit("job_submitted", job_id=job.id, cells=0)
        job.state = "running"
        job.started = time.time()
        self._save_job(job)
        thread = threading.Thread(target=self._run_merge,
                                  args=(job.id,), daemon=True,
                                  name=f"merge-{job.id}")
        self._merge_threads.append(thread)
        thread.start()
        return SubmitResponse(job_id=job.id, state=job.state,
                              cells=0, run_id=job.request.run_id)

    def _run_merge(self, job_id: str) -> None:
        from repro.experiments.sharding import (ShardMergeError,
                                                merge_shards,
                                                wait_for_shards)
        job = self.jobs[job_id]
        req = job.request
        try:
            wait_for_shards(req.run_id, poll=0.5,
                            timeout=req.watch_timeout)
            report = merge_shards(
                req.run_id,
                telemetry_dir=self.config.telemetry_dir)
        except (TimeoutError, ShardMergeError,
                FileNotFoundError) as exc:
            with self._lock:
                self._finish_job(job, "failed", error=str(exc))
            return
        with self._lock:
            self._feed(job, CellResult(
                key=req.run_id, label=f"merge:{req.run_id}",
                status="done", source="run",
                seconds=time.time() - job.started,
                payload_sha=None,
                error=None))
            job.error = None
            self._finish_job(job, "complete",
                             summary=report.summary())

    # -- status / cancel ---------------------------------------------------

    def _progress(self, job: _Job) -> JobProgress:
        if job.progress_snapshot is not None:
            return job.progress_snapshot
        p = JobProgress(total=len(job.keys))
        for key in job.keys:
            cell = self.queue.cells.get(key)
            state = cell.state if cell is not None else PENDING
            if state == DONE:
                p.done += 1
            elif state == LEASED:
                p.running += 1
            elif state == FAILED:
                p.failed += 1
            elif state == CANCELLED:
                p.cancelled += 1
            else:
                p.pending += 1
        p.cached = len(job.cached_keys)
        return p

    def _status(self, job: _Job) -> JobStatus:
        return JobStatus(job_id=job.id, state=job.state,
                         kind=job.request.kind,
                         progress=self._progress(job),
                         submitted=job.submitted, started=job.started,
                         finished=job.finished, error=job.error,
                         request=job.request.to_dict())

    def status(self, job_id: str) -> JobStatus:
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise UnknownJob(job_id)
            return self._status(job)

    def list_jobs(self) -> list[JobStatus]:
        with self._lock:
            return [self._status(j) for j in
                    sorted(self.jobs.values(),
                           key=lambda j: j.submitted)]

    def cancel(self, job_id: str) -> JobStatus:
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise UnknownJob(job_id)
            if job.state in schemas.TERMINAL_JOB_STATES:
                return self._status(job)
            for key in self.queue.cancel_job(job_id):
                self._feed(job, CellResult(
                    key=key, label=job.labels.get(key, "?"),
                    status="cancelled"))
            job.progress_snapshot = self._progress(job)
            job.state = "cancelled"
            job.finished = time.time()
            if job.manifest is not None:
                job.manifest.finalize("interrupted")
            self.journal.append("job_cancelled", job_id=job.id)
            self._emit("job_cancelled", job_id=job.id)
            self._save_job(job)
            return self._status(job)

    def health(self) -> Health:
        with self._lock:
            counts: dict[str, int] = {}
            for job in self.jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return Health(
                status="draining" if self._draining else "ok",
                generation=self.generation,
                workers=sum(1 for w in self._workers.values()
                            if w.proc.is_alive()),
                jobs=counts)

    # -- recovery ----------------------------------------------------------

    _specs: dict     # key -> picklable work spec (rebuilt at intake)

    def _recover(self) -> None:
        """Replay the journal + job records + manifests + cache: every
        in-flight job resumes with zero redundant simulation."""
        import json
        self._specs = {}
        if self.events is not None:
            # Fold worker shards a dead predecessor never merged.
            self.events.merge_worker_shards()
        for path in sorted(self._jobs_dir.glob("*.json")):
            if ".tmp." in path.name:
                continue
            try:
                with open(path, encoding="utf-8") as fh:
                    data = json.load(fh)
            except (OSError, ValueError):
                continue
            state = data.get("state")
            job = _Job(id=data["id"],
                       request=JobRequest.from_dict(
                           data.get("request", {})),
                       state=state or "queued",
                       submitted=data.get("submitted", 0.0),
                       started=data.get("started"),
                       finished=data.get("finished"),
                       error=data.get("error"))
            if data.get("progress"):
                job.progress_snapshot = JobProgress(**data["progress"])
            self.jobs[job.id] = job
            if state in schemas.TERMINAL_JOB_STATES:
                continue
            if job.request.kind == "merge":
                # Re-arm the watcher; wait_for_shards is idempotent.
                job.state = "running"
                thread = threading.Thread(target=self._run_merge,
                                          args=(job.id,), daemon=True,
                                          name=f"merge-{job.id}")
                self._merge_threads.append(thread)
                thread.start()
                continue
            grid = self._compile_sweep(job.request)
            from repro.core.batch import resolve_backend
            backend = resolve_backend(job.request.backend)
            job.keys, job.labels = [], {}
            job.cached_keys = set()
            self._register_cells(job, grid, backend, resumed=True)
            self.journal.append("job_resumed", job_id=job.id,
                                generation=self.generation)
            self._emit("job_started", job_id=job.id)
            self._save_job(job)
            self._check_job_done(job)

    # -- workers -----------------------------------------------------------

    def _spawn_worker(self) -> None:
        self._worker_seq += 1
        wid = f"w{self._worker_seq}"
        task_q = self._mp.Queue()
        proc = self._mp.Process(
            target=_worker_entry, name=f"repro-service-{wid}",
            args=(wid, task_q, self._result_q, self.config.lease_ttl,
                  faults.active_plan(), self._tele_ctx, os.getpid()),
            daemon=True)
        proc.start()
        self._workers[wid] = _Worker(wid=wid, proc=proc, task_q=task_q,
                                     last_beat=time.monotonic())
        self._emit("worker_spawned", worker=wid)

    def start(self) -> None:
        """Spawn the worker pool and the HTTP server (if configured)."""
        with self._lock:
            for _ in range(self.config.workers):
                self._spawn_worker()

    def _reap_worker(self, w: _Worker, reason: str) -> None:
        """A worker died or hung: revoke its leases, replace it."""
        self._emit("worker_lost", worker=w.wid, reason=reason)
        self.journal.append("worker_lost", worker=w.wid, reason=reason)
        for cell in self.queue.leases_of(w.wid):
            attempt = cell.lease.token
            disp = self.queue.revoke(
                cell.key, f"worker {w.wid} {reason}", time.monotonic())
            self._emit("lease_expired", key=cell.key, worker=w.wid,
                       attempt=attempt, reason=reason)
            self._after_release(cell.key, attempt, disp)
        try:
            if w.proc.is_alive():
                w.proc.terminate()
        except Exception:
            pass
        del self._workers[w.wid]
        if not self._draining and not self._stopped:
            self._spawn_worker()

    # -- scheduler loop ----------------------------------------------------

    def run(self, poll: float = 0.2) -> None:
        """Blocking scheduler loop; returns after a completed drain."""
        self.start()
        try:
            while not self._stopped:
                self.step(poll)
        finally:
            self._shutdown_workers()
            if self._http is not None:
                try:
                    self._http.shutdown()
                    self._http.server_close()
                except Exception:
                    pass
            if self.events is not None:
                self.events.merge_worker_shards()
                self.events.close()
            self.journal.close()

    def step(self, poll: float = 0.2) -> None:
        """One scheduler iteration (exposed for in-process tests)."""
        try:
            msg = self._result_q.get(timeout=poll)
        except stdlib_queue.Empty:
            msg = None
        with self._lock:
            while True:
                if msg is not None:
                    self._on_message(msg)
                try:
                    msg = self._result_q.get_nowait()
                except stdlib_queue.Empty:
                    break
            now = time.monotonic()
            for cell, disp, worker in self.queue.expire(now):
                self._emit("lease_expired", key=cell.key,
                           worker=worker, attempt=cell.attempts,
                           reason="ttl")
                self.journal.append("lease_expired", key=cell.key,
                                    worker=worker,
                                    attempt=cell.attempts)
                self._after_release(cell.key, cell.attempts, disp)
            self._check_workers(now)
            if not self._draining:
                self._dispatch(now)
            elif not any(c.state == LEASED
                         for c in self.queue.cells.values()):
                self._complete_drain()

    def _check_workers(self, now: float) -> None:
        timeout = self.config.policy.timeout
        for w in list(self._workers.values()):
            if not w.proc.is_alive():
                self._reap_worker(w, "vanished")
                continue
            if timeout is not None and w.current is not None:
                key, _token = w.current
                cell = self.queue.cells.get(key)
                if (cell is not None and cell.state == LEASED
                        and cell.lease.worker == w.wid
                        and now - cell.lease.granted > timeout):
                    self._reap_worker(w, "hung")

    def _dispatch(self, now: float) -> None:
        for w in self._workers.values():
            if not w.ready or not w.proc.is_alive():
                continue
            cell = self.queue.claim(w.wid, now)
            if cell is None:
                return              # nothing claimable right now
            w.ready = False
            w.current = (cell.key, cell.lease.token)
            for job_id in sorted(cell.jobs):
                job = self.jobs.get(job_id)
                if job is not None and job.state == "queued":
                    job.state = "running"
                    job.started = time.time()
                    self._emit("job_started", job_id=job.id)
                    self._save_job(job)
            self._emit("cell_leased", key=cell.key, worker=w.wid,
                       attempt=cell.attempts)
            self.journal.append("lease", key=cell.key, worker=w.wid,
                                attempt=cell.attempts)
            self._mark_manifests(cell.key, "running",
                                 attempts=cell.attempts)
            w.task_q.put((cell.key, self._specs[cell.key],
                          cell.attempts, cell.lease.token))
            if faults.lease_lost(cell.key, cell.attempts):
                # Simulated lease-store loss: the worker runs on, but
                # its token is now stale; the cell is requeued (the
                # spent attempt preserved) and the late result dropped.
                attempt = cell.attempts
                disp = self.queue.revoke(cell.key,
                                         "lease lost (injected)", now)
                self._emit("lease_expired", key=cell.key, worker=w.wid,
                           attempt=attempt, reason="revoked")
                self.journal.append("lease_revoked", key=cell.key,
                                    worker=w.wid, attempt=attempt)
                self._after_release(cell.key, attempt, disp)

    def _on_message(self, msg: tuple) -> None:
        kind, wid = msg[0], msg[1]
        w = self._workers.get(wid)
        if kind == "heartbeat":
            if w is not None:
                w.last_beat = time.monotonic()
                for cell in self.queue.leases_of(wid):
                    if self.queue.renew(cell.key, wid,
                                        cell.lease.token,
                                        time.monotonic()):
                        self._emit("lease_renewed", key=cell.key,
                                   worker=wid)
            return
        if kind == "ready":
            if w is not None:
                w.ready = True
                w.current = None
            return
        if kind == "started":
            return                  # informational; lease already held
        if kind == "done":
            _, _, key, token, payload = msg
            self._on_done(wid, key, token, payload)
            return
        if kind == "error":
            _, _, key, token, err = msg
            self._on_error(wid, key, token, err)

    def _on_done(self, wid: str, key: str, token: int,
                 payload: dict) -> None:
        cell = self.queue.cells.get(key)
        attempt = token
        seconds = None
        if cell is not None and cell.state == LEASED \
                and cell.lease is not None:
            seconds = time.monotonic() - cell.lease.granted
        if not self.queue.complete(key, wid, token):
            # Stale fencing token (lease expired or was revoked): the
            # result is discarded — the re-leased attempt owns the cell.
            self.journal.append("stale_result", key=key, worker=wid,
                                attempt=attempt)
            return
        self.cache.put(key, payload)
        self.journal.append("cell_done", key=key, worker=wid,
                            attempt=attempt)
        label = self._label_of(key)
        self._emit("cell_done", key=key, label=label, source="run",
                   seconds=round(seconds, 3) if seconds else 0.0)
        self._mark_manifests(key, "done", attempts=attempt,
                             seconds=seconds, source="run")
        sha = rc.payload_checksum(payload)
        for job in self._jobs_of(key):
            self._feed(job, CellResult(
                key=key, label=label, status="done", source="run",
                attempts=attempt, seconds=seconds, payload_sha=sha))
            self._check_job_done(job)
        # The crash point of the ``orchestrator_crash`` fault: state
        # for this cell is fully journaled/cached, so the restarted
        # generation resumes without re-simulating it.
        faults.inject_orchestrator_crash(f"orc:{key}", self.generation,
                                         hard=self.config.hard_crash)

    def _on_error(self, wid: str, key: str, token: int,
                  err: str) -> None:
        disp = self.queue.fail(key, wid, token, err, time.monotonic())
        if disp == "stale":
            return
        self.journal.append("cell_error", key=key, worker=wid,
                            attempt=token, error=err,
                            disposition=disp)
        label = self._label_of(key)
        if disp == "retry":
            self._emit("cell_retried", key=key, label=label,
                       attempt=token, error=err)
            self._mark_manifests(key, "retrying", attempts=token,
                                 error=err)
            return
        self._emit("cell_failed", key=key, label=label, attempt=token,
                   error=err)
        self._mark_manifests(key, "failed", attempts=token, error=err)
        for job in self._jobs_of(key):
            self._feed(job, CellResult(key=key, label=label,
                                       status="failed",
                                       attempts=token, error=err))
            self._check_job_done(job)

    def _after_release(self, key: str, attempt: int,
                       disp: str | None) -> None:
        """Manifest/feed bookkeeping after an expiry or revocation."""
        if disp is None:
            return
        label = self._label_of(key)
        if disp == "retry":
            self._emit("cell_requeued", key=key, label=label)
            self._mark_manifests(key, "pending", attempts=attempt)
            return
        cell = self.queue.cells.get(key)
        err = (cell.error if cell is not None else None) \
            or "lease expired"
        self._emit("cell_failed", key=key, label=label,
                   attempt=attempt, error=err)
        self._mark_manifests(key, "failed", attempts=attempt,
                             error=err)
        for job in self._jobs_of(key):
            self._feed(job, CellResult(key=key, label=label,
                                       status="failed",
                                       attempts=attempt, error=err))
            self._check_job_done(job)

    # -- job bookkeeping ---------------------------------------------------

    def _jobs_of(self, key: str) -> list[_Job]:
        cell = self.queue.cells.get(key)
        if cell is None:
            return []
        return [self.jobs[j] for j in sorted(cell.jobs)
                if j in self.jobs
                and self.jobs[j].state in ("queued", "running")]

    def _label_of(self, key: str) -> str:
        cell = self.queue.cells.get(key)
        if cell is not None:
            return cell.label
        return "?"

    def _mark_manifests(self, key: str, status: str, **kw) -> None:
        for job in self._jobs_of(key):
            if job.manifest is not None \
                    and key in job.manifest.cells:
                job.manifest.mark(key, status, **kw)

    def _check_job_done(self, job: _Job) -> None:
        if job.state in schemas.TERMINAL_JOB_STATES:
            return
        if not job.keys or not self.queue.job_settled(job.id):
            return
        counts = self.queue.counts_for(job.id)
        if counts.get(FAILED):
            self._finish_job(
                job, "failed",
                error=f"{counts[FAILED]} of {len(job.keys)} cell(s) "
                      f"failed permanently after "
                      f"{self.config.policy.retries} retries")
        else:
            self._finish_job(job, "complete")

    def _finish_job(self, job: _Job, state: str, error: str | None
                    = None, summary: str | None = None) -> None:
        job.progress_snapshot = self._progress(job)
        job.state = state
        job.finished = time.time()
        if error is not None:
            job.error = error
        if job.started is None:
            job.started = job.finished
        if job.manifest is not None:
            job.manifest.finalize(
                "complete" if state == "complete" else "failed")
        self.journal.append("job_finished", job_id=job.id, status=state)
        self._emit("job_finished", job_id=job.id, status=state)
        self._save_job(job)

    # -- drain -------------------------------------------------------------

    def request_drain(self) -> None:
        """SIGTERM handler body: stop leasing, finish in-flight cells,
        checkpoint, then :meth:`run` returns."""
        with self._lock:
            if self._draining:
                return
            self._draining = True
            self.journal.append("drain", generation=self.generation)
            self._emit("service_drain")

    def _complete_drain(self) -> None:
        self._stopped = True
        self.journal.append("stopped", generation=self.generation)
        self._emit("service_stopped", status="drained")

    def _shutdown_workers(self) -> None:
        with self._lock:
            workers = list(self._workers.values())
            self._workers.clear()
        for w in workers:
            try:
                w.task_q.put(None)
            except Exception:
                pass
        deadline = time.monotonic() + 5.0
        for w in workers:
            w.proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if w.proc.is_alive():
                try:
                    w.proc.terminate()
                except Exception:
                    pass


def _worker_entry(wid, task_q, result_q, lease_ttl, fault_plan,
                  tele_ctx, parent_pid) -> None:
    """Child-process entry: die with the parent (an orchestrator crash
    must not leave orphan workers mining CPU), then run the loop."""
    import threading as _threading

    def watch_parent() -> None:
        while True:
            time.sleep(0.5)
            if os.getppid() != parent_pid:
                os._exit(0)
    _threading.Thread(target=watch_parent, daemon=True).start()
    service_worker.worker_main(wid, task_q, result_q, lease_ttl,
                               fault_plan=fault_plan,
                               tele_ctx=tele_ctx)
