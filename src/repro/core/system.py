"""Single-core system: routes a trace through one design variant.

Variants (paper §IV-E):

* ``baseline``  — conventional L1D/L2C/LLC hierarchy (Table I).
* ``sdc_lp``    — the proposal: LP routes irregular accesses to the SDC,
  whose misses bypass L2C/LLC straight to DRAM (§III).
* ``topt``      — T-OPT: trace-exact Belady replacement at the LLC for
  irregular-region lines (DESIGN.md substitution #4).
* ``distill``   — Distill Cache LLC (LOC + WOC).
* ``l1iso``     — L1D enlarged to 40 KiB / 10-way (iso-storage with SDC).
* ``llc2x``     — LLC with doubled set count.
* ``expert``    — Expert Programmer: per-data-structure routing to the
  SDC from profiled DRAM fractions (no LP).

Ablations beyond the paper's comparison set:

* ``victim``    — L1D victim cache (Jouppi [27]) holding L1 evictions,
  iso-storage with the SDC; probes on L1 misses, swap on hit.
* ``lp_bypass`` — LP routing *without* the SDC: irregular accesses skip
  the L2C/LLC lookups and go straight to DRAM but get no side storage
  (isolates the bypass benefit from the SDC's caching benefit).
* ``sdc_clp``   — the SDC fronted by a cache-level predictor
  (:mod:`repro.core.clp`, per Jalili & Erez) instead of the LP: PCs
  are routed by the hierarchy level that has been serving them.
* ``sdc_lp_tagless`` — the tag-less/larger-table LP ablation: the LP's
  tag bits buy a 4x larger direct-mapped table whose slots alias
  across PCs (:func:`repro.config.tagless_lp_config`).

Single-valid-copy coherence between the SDC and the hierarchy is
enforced by the SDCDir exactly as §III-C describes: a block entering
the SDC is extracted from the hierarchy and vice versa.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.config import BLOCK_BITS, SystemConfig, tagless_lp_config
from repro.core.batch import resolve_backend, try_run_batch
from repro.core.clp import CacheLevelPredictor
from repro.core.lp import LargePredictor, LPStats
from repro.core.sdcdir import SDCDirectory
from repro.mem.cache import CacheStats, SetAssocCache
from repro.mem.distill import DistillCache
from repro.mem.dram import DRAMStats
from repro.mem.hierarchy import (DRAM, L1D, L2C, LLC, SDC_LEVEL,
                                 MemoryHierarchy)
from repro.mem.replacement import BeladyOPT
from repro.mem.timing import CoreTimer
from repro.mem.tlb import TLBHierarchy, TLBStats
from repro.telemetry import telemetry_interval
from repro.telemetry.probes import (Timeline, WindowProbe,
                                    single_core_snapshot)
from repro.trace.record import Trace
from repro.validate import check_interval
from repro.validate.invariants import check_single_core_system

VARIANTS = ("baseline", "sdc_lp", "topt", "distill", "l1iso", "llc2x",
            "expert", "victim", "lp_bypass", "sdc_clp", "sdc_lp_tagless")

#: Variants that pair an SDC with the conventional hierarchy.
SDC_VARIANTS = ("sdc_lp", "expert", "sdc_clp", "sdc_lp_tagless")

NEVER = BeladyOPT.NEVER


@dataclass
class SystemStats:
    """Aggregate results of one simulation run."""

    variant: str
    instructions: int
    cycles: float
    l1d: CacheStats
    l2c: CacheStats
    llc: CacheStats
    sdc: CacheStats | None
    dram: DRAMStats
    lp: LPStats | None
    levels: np.ndarray | None = None     # per-access serving level codes
    tlb: TLBStats | None = None
    timeline: Timeline | None = None     # windowed metrics (telemetry)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def mpki(self, cache: str) -> float:
        stats = getattr(self, cache)
        if stats is None:
            return 0.0
        return stats.mpki(self.instructions)

    @property
    def l1_family_mpki(self) -> float:
        """Combined first-level MPKI: L1D plus SDC (Fig. 9's right bars)."""
        m = self.l1d.misses + (self.sdc.misses if self.sdc else 0)
        return 1000.0 * m / self.instructions if self.instructions else 0.0

    def to_payload(self) -> dict:
        """Lossless JSON-friendly serialization (for the result cache).

        Per-access ``levels`` arrays are intentionally unsupported:
        results recorded with ``record_levels=True`` are not cacheable.
        """
        if self.levels is not None:
            raise ValueError("SystemStats with per-access levels cannot "
                             "be serialized to a cache payload")
        return {
            "variant": self.variant,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "l1d": dataclasses.asdict(self.l1d),
            "l2c": dataclasses.asdict(self.l2c),
            "llc": dataclasses.asdict(self.llc),
            "sdc": dataclasses.asdict(self.sdc) if self.sdc else None,
            "dram": dataclasses.asdict(self.dram),
            "lp": dataclasses.asdict(self.lp) if self.lp else None,
            "tlb": dataclasses.asdict(self.tlb) if self.tlb else None,
            "timeline": (self.timeline.to_payload()
                         if self.timeline is not None else None),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SystemStats":
        """Inverse of :meth:`to_payload`."""
        def opt(key, factory):
            d = payload.get(key)
            return factory(**d) if d is not None else None

        return cls(
            variant=payload["variant"],
            instructions=payload["instructions"],
            cycles=payload["cycles"],
            l1d=CacheStats(**payload["l1d"]),
            l2c=CacheStats(**payload["l2c"]),
            llc=CacheStats(**payload["llc"]),
            sdc=opt("sdc", CacheStats),
            dram=DRAMStats(**payload["dram"]),
            lp=opt("lp", LPStats),
            tlb=opt("tlb", TLBStats),
            timeline=(Timeline.from_payload(payload["timeline"])
                      if payload.get("timeline") is not None else None),
        )

    def as_dict(self) -> dict:
        """Flat JSON-friendly summary (no per-access arrays)."""
        out = {
            "variant": self.variant,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "dram_reads": self.dram.reads,
            "dram_writes": self.dram.writes,
        }
        for cache in ("l1d", "l2c", "llc", "sdc"):
            cs = getattr(self, cache)
            if cs is None:
                continue
            out[f"{cache}_accesses"] = cs.accesses
            out[f"{cache}_misses"] = cs.misses
            out[f"{cache}_mpki"] = self.mpki(cache)
        if self.lp is not None:
            out["lp_irregular"] = self.lp.predicted_irregular
            out["lp_lookups"] = self.lp.lookups
        if self.tlb is not None:
            out["tlb_walks"] = self.tlb.walks
        return out


def variant_config(config: SystemConfig, variant: str) -> SystemConfig:
    """Apply a variant's structural changes to the base configuration."""
    if variant == "l1iso":
        # +2 ways: 32 KiB 8-way -> 40 KiB 10-way (paper: +8 KiB, the SDC
        # budget, as extra associativity).
        l1 = config.l1d
        return dataclasses.replace(config, l1d=l1.resized(
            l1.size_bytes * 10 // 8, ways=l1.ways + 2))
    if variant == "llc2x":
        llc = config.llc
        return dataclasses.replace(config, llc=llc.resized(
            llc.size_bytes * 2))
    if variant == "sdc_lp_tagless":
        return dataclasses.replace(config,
                                   lp=tagless_lp_config(config.lp))
    return config


def irregular_access_mask(trace: Trace) -> np.ndarray:
    """Boolean mask of accesses falling in irregular-annotated regions."""
    space = trace.address_space
    rids = space.classify_addresses(trace.accesses["addr"].astype(np.int64))
    names = list(space.regions)
    irr_ids = [i for i, name in enumerate(names)
               if space.regions[name].irregular_hint]
    return np.isin(rids, irr_ids)


def next_use_indices(blocks: np.ndarray) -> np.ndarray:
    """For each access, the index of the next access to the same block
    (``NEVER`` when none) — the oracle feed for Belady/T-OPT."""
    n = len(blocks)
    order = np.lexsort((np.arange(n), blocks))
    sb = blocks[order]
    nxt = np.full(n, NEVER, dtype=np.int64)
    same = sb[1:] == sb[:-1]
    nxt[order[:-1][same]] = order[1:][same]
    return nxt


# -- per-trace aux memoization ------------------------------------------------
# The aux feeds (next-use oracle, irregularity masks, distill word
# indices) are pure functions of the trace, but short-window runs used
# to recompute them on every run() call, dominating startup cost.  They
# are memoized on the trace object itself so the cache lives exactly as
# long as the trace and both backends share one copy.

def _trace_aux_memo(trace: Trace) -> dict:
    memo = getattr(trace, "_aux_cache", None)
    if memo is None:
        memo = {}
        trace._aux_cache = memo
    return memo


def topt_aux_arrays(trace: Trace, blocks: np.ndarray | None = None
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Memoized ``(next_use_indices, irregular_access_mask)`` arrays."""
    memo = _trace_aux_memo(trace)
    out = memo.get("topt")
    if out is None:
        if blocks is None:
            blocks = (trace.accesses["addr"] >> BLOCK_BITS).astype(np.int64)
        out = (next_use_indices(blocks), irregular_access_mask(trace))
        memo["topt"] = out
    return out


def distill_aux_words(trace: Trace) -> np.ndarray:
    """Memoized word-within-block indices (8 B words) per access."""
    memo = _trace_aux_memo(trace)
    out = memo.get("distill")
    if out is None:
        out = ((trace.accesses["addr"] >> 3) & 7).astype(np.int64)
        memo["distill"] = out
    return out


def expert_block_mask(trace: Trace, regions: set[int]) -> np.ndarray:
    """Memoized per-access mask of the expert-routed regions."""
    memo = _trace_aux_memo(trace)
    key = ("expert", frozenset(regions))
    out = memo.get(key)
    if out is None:
        space = trace.address_space
        rids = space.classify_addresses(
            trace.accesses["addr"].astype(np.int64))
        out = np.isin(rids, list(regions))
        memo[key] = out
    return out


class SingleCoreSystem:
    """One core, one trace, one design variant."""

    def __init__(self, config: SystemConfig | None = None,
                 variant: str = "baseline",
                 expert_regions: set[int] | None = None,
                 enable_prefetch: bool = True,
                 enable_tlb: bool = True,
                 check_every: int | None = None,
                 telemetry_every: int | None = None):
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; "
                             f"choose from {VARIANTS}")
        self.variant = variant
        # Invariant checking (repro.validate): 0 = off.  Resolved once
        # here from the argument or REPRO_VALIDATE so the run loop pays
        # a single falsy test per access when disabled.
        self._check_every = check_interval(check_every)
        # Windowed telemetry (repro.telemetry): 0 = off, same contract.
        self._telemetry_every = telemetry_interval(telemetry_every)
        self._ledger_valid = True
        base = config or SystemConfig()
        self.config = variant_config(base, variant)
        self.expert_regions = expert_regions or set()
        if variant == "expert" and expert_regions is None:
            raise ValueError("expert variant needs expert_regions "
                             "(see repro.core.expert.classify_regions)")

        llc_policy = None
        llc = None
        if variant == "topt":
            llc_policy = BeladyOPT(irregular_only=True)
        elif variant == "distill":
            llc = DistillCache(self.config.llc)
        self.hierarchy = MemoryHierarchy(self.config, llc_policy=llc_policy,
                                         llc=llc,
                                         enable_prefetch=enable_prefetch)
        self.tlb = TLBHierarchy() if enable_tlb else None

        self.has_sdc = variant in SDC_VARIANTS
        self.sdc: SetAssocCache | None = None
        self.lp: LargePredictor | None = None
        self.clp: CacheLevelPredictor | None = None
        self.sdcdir: SDCDirectory | None = None
        if self.has_sdc:
            self.sdc = SetAssocCache(self.config.sdc)
            self.sdcdir = SDCDirectory(self.config.sdcdir, num_cores=1)
            if variant in ("sdc_lp", "sdc_lp_tagless"):
                self.lp = LargePredictor(self.config.lp)
            elif variant == "sdc_clp":
                self.clp = CacheLevelPredictor(self.config.clp)
        elif variant == "lp_bypass":
            self.lp = LargePredictor(self.config.lp)

        self.victim: SetAssocCache | None = None
        if variant == "victim":
            # Fully-associative, iso-storage with the SDC, 1-cycle probe.
            vc_blocks = max(1, self.config.sdc.num_blocks)
            self.victim = SetAssocCache(dataclasses.replace(
                self.config.sdc, name="VC", ways=vc_blocks,
                size_bytes=vc_blocks * self.config.sdc.block_size,
                prefetcher=None))

    # -- SDC plumbing -------------------------------------------------------
    def _sdc_fill(self, block: int, dirty: bool) -> None:
        """Install a block in the SDC, maintaining the SDCDir subset
        invariant and single-valid-copy."""
        sdc, sdcdir = self.sdc, self.sdcdir
        displaced = sdcdir.insert(block, 0, dirty)
        if displaced is not None:
            # SDCDir eviction invalidates the SDC copy (§III-C).  Either
            # dirty flag (the line's bit or the directory's recorded
            # owner) obliges a writeback.
            was, was_dirty = sdc.invalidate(displaced[0])
            if (was and was_dirty) or displaced[2] == 0:
                self.hierarchy.dram.write(displaced[0])
        evicted = sdc.fill(block, dirty=dirty)
        if evicted is not None:
            ev_block, ev_dirty = evicted
            # The departing line's dirty bit and the directory's dirty
            # ownership must agree; honour either so a writeback can
            # never be lost to a stale flag on one side.
            _, was_owner = sdcdir.remove_sharer(ev_block, 0)
            if ev_dirty or was_owner:
                self.hierarchy.dram.write(ev_block)

    def _sdc_prefetch(self, block: int) -> None:
        """Next-line prefetch into the SDC (Table I; disabled when the
        SDC prefetcher config is None), avoiding duplicates of blocks
        live in the hierarchy."""
        sdc = self.sdc
        if self.config.sdc.prefetcher is None:
            return
        # Inlined residency probes (SDC, then L1D/L2C/LLC) using each
        # cache's precomputed shift/mask split — this guard runs on
        # every SDC demand access, the install below only on the miss.
        h = self.hierarchy
        for cache in (sdc, h.l1d, h.l2c, h.llc):
            m = cache._set_mask
            if m >= 0:
                if (block >> cache._set_bits) in cache.sets[block & m]:
                    return
            elif cache.contains(block):
                return
        displaced = self.sdcdir.insert(block, 0, False)
        if displaced is not None:
            was, was_dirty = sdc.invalidate(displaced[0])
            if (was and was_dirty) or displaced[2] == 0:
                self.hierarchy.dram.write(displaced[0])
        evicted = sdc.fill(block, prefetch=True)
        if evicted is not None:
            ev_block, ev_dirty = evicted
            _, was_owner = self.sdcdir.remove_sharer(ev_block, 0)
            if ev_dirty or was_owner:
                self.hierarchy.dram.write(ev_block)

    def _access_via_sdc(self, block: int, write: bool) -> tuple[int, int]:
        """Irregular path: SDC, then directory + DRAM (bypassing L2C/LLC).

        Coherence follows §III-C: clean blocks may be duplicated between
        the SDC and the hierarchy; a write claims the single valid copy
        by invalidating the others.  Returns (level_code, latency).
        """
        sdc = self.sdc
        h = self.hierarchy
        latency = sdc.latency
        if sdc.access(block, write):
            if write:
                self.sdcdir.mark_dirty(block, 0)
                # Clean duplicates in the hierarchy become stale.
                h.extract(block)
            # Next-line prefetch fires on SDC demand accesses.
            self._sdc_prefetch(block + 1)
            return SDC_LEVEL, latency
        # Miss: lightweight coherence message to the directory (§III-A).
        # A pure probe — it must not bump the entry's recency, or a
        # stream of misses to a dead block would keep its stale SDCDir
        # entry alive and skew victim selection.
        latency += self.config.sdc_miss_dir_latency
        self.sdcdir.lookup(block, touch=False)
        if write:
            present, probe_lat = h.extract(block)
            if present:
                latency += probe_lat
                self._sdc_fill(block, dirty=True)
                self._sdc_prefetch(block + 1)
                return L2C, latency
        else:
            served_lat = self._probe_hierarchy_clean(block)
            if served_lat is not None:
                # Served by the hierarchy; the SDC takes a clean copy
                # while the (now clean) hierarchy copy stays valid.
                latency += served_lat
                self._sdc_fill(block, dirty=False)
                self._sdc_prefetch(block + 1)
                return L2C, latency
        latency += h.dram.read(block)
        self._sdc_fill(block, dirty=write)
        self._sdc_prefetch(block + 1)
        return DRAM, latency

    def _probe_hierarchy_clean(self, block: int) -> int | None:
        """Non-destructive read probe of L1D/L2C/LLC: returns the probe
        latency of the shallowest level holding a copy, else None.

        Every resident copy is cleaned (single writeback when any level
        was dirty), not just the serving one: the block may live at
        several levels with the dirty bit at a deeper one (e.g. clean
        refetch into the L1 above a dirty L2 line), and a copy left
        dirty below a clean shared SDC copy breaks single-valid-copy.
        """
        h = self.hierarchy
        serve_latency = None
        was_dirty = False
        for cache in (h.l1d, h.l2c, h.llc):
            # Inlined contains + clear_dirty (one split, one dict get).
            m = cache._set_mask
            if m >= 0:
                line = cache.sets[block & m].get(block >> cache._set_bits)
            else:
                line = cache.sets[block % cache.num_sets].get(
                    block // cache.num_sets)
            if line is not None:
                if serve_latency is None:
                    serve_latency = cache.latency
                if line[1]:
                    line[1] = 0
                    was_dirty = True
        if was_dirty:
            h.dram.write(block)
        return serve_latency

    def _access_regular_with_sdc(self, block: int, write: bool, aux,
                                 pc: int = 0) -> tuple[int, int]:
        """Regular path when an SDC exists: the SDCDir is probed in
        parallel with the L2C on an L1D miss; an SDC-resident block is
        transferred back into the L1D."""
        h = self.hierarchy
        l1d = h.l1d
        sdc = self.sdc
        latency = l1d.latency
        l1_hit = l1d.access(block, write)
        if h._l1_next_line:
            # Inlined l1d/sdc residency probes for the next-line
            # candidate (runs on every access on this path).
            pf = block + 1
            m = l1d._set_mask
            resident = ((pf >> l1d._set_bits) in l1d.sets[pf & m]
                        if m >= 0 else l1d.contains(pf))
            if not resident:
                m = sdc._set_mask
                resident = ((pf >> sdc._set_bits) in sdc.sets[pf & m]
                            if m >= 0 else sdc.contains(pf))
            if not resident:
                h._fill_l1(pf, prefetch=True)
        elif h.l1_prefetcher is not None:
            candidates = (h._l1_pf_pc(pc, block, l1_hit)
                          if h._l1_pf_pc is not None
                          else h.l1_prefetcher.on_access(block, l1_hit))
            for pf in candidates:
                if not l1d.contains(pf) and not sdc.contains(pf):
                    h._fill_l1(pf, prefetch=True)
        if l1_hit:
            if write:
                # A write claims the single valid copy (§III-C): a clean
                # duplicate the SDC may hold (left by an earlier shared
                # read) is now stale and must be dropped.  Inlined
                # residency probe — this runs on every L1 write hit.
                m = sdc._set_mask
                resident = ((block >> sdc._set_bits) in sdc.sets[block & m]
                            if m >= 0 else sdc.contains(block))
                if resident:
                    sdc.invalidate(block)
                    self.sdcdir.remove_sharer(block, 0)
            return L1D, latency
        if sdc.contains(block):
            # Parallel SDCDir hit: serve from the SDC.  A read leaves a
            # clean duplicate in the SDC (§III-C allows shared clean
            # copies); a write claims exclusivity.
            latency += max(h.l2c.latency, sdc.latency +
                           self.sdcdir.latency)
            if write:
                # Dirty ownership (if any) transfers with the data into
                # the L1 fill below (dirty=True), so the dropped
                # remove_sharer ownership flag incurs no writeback here.
                sdc.invalidate(block)
                self.sdcdir.remove_sharer(block, 0)
                h._fill_l1(block, dirty=True)
            else:
                if sdc.clear_dirty(block):
                    # The SDC copy was cleaned and written back; the
                    # directory's dirty ownership must drop with it or a
                    # later eviction double-counts the writeback.
                    self.sdcdir.clear_dirty(block)
                    h.dram.write(block)
                h._fill_l1(block, dirty=False)
            return SDC_LEVEL, latency

        # Continue the conventional walk below the L1D.
        latency += h.l2c.latency
        l2_hit = h.l2c.access(block, False)
        if h.l2_prefetcher is not None:
            for pf in h.l2_prefetcher.on_access(block, l2_hit):
                if not h.l2c.contains(pf) and not sdc.contains(pf):
                    h._fill_l2(pf, prefetch=True)
        if l2_hit:
            h._fill_l1(block, dirty=write)
            return L2C, latency
        latency += h.llc.latency
        if h.llc.access(block, False, aux=aux):
            h._fill_l2(block)
            h._fill_l1(block, dirty=write)
            return LLC, latency
        latency += h.dram.read(block)
        h._fill_llc(block, aux=aux)
        h._fill_l2(block)
        h._fill_l1(block, dirty=write)
        return DRAM, latency

    # -- ablation paths ------------------------------------------------------
    def _fill_l1_victim(self, block: int, dirty: bool = False,
                        prefetch: bool = False) -> None:
        """L1 fill whose evictions land in the victim cache (Jouppi)."""
        evicted = self.hierarchy.l1d.fill(block, dirty=dirty,
                                          prefetch=prefetch)
        if evicted is not None:
            vev = self.victim.fill(evicted[0], dirty=evicted[1])
            if vev is not None and vev[1]:
                self.hierarchy._writeback_to_l2(vev[0])

    def _access_victim(self, block: int, write: bool, aux
                       ) -> tuple[int, int]:
        h = self.hierarchy
        latency = h.l1d.latency
        l1_hit = h.l1d.access(block, write)
        if h.l1_prefetcher is not None:
            for pf in h.l1_prefetcher.on_access(block, l1_hit):
                if not h.l1d.contains(pf) and not self.victim.contains(pf):
                    self._fill_l1_victim(pf, prefetch=True)
        if l1_hit:
            return L1D, latency
        latency += self.victim.latency
        if self.victim.access(block, write):
            # Swap the line back into the L1D.
            _, vdirty = self.victim.invalidate(block)
            self._fill_l1_victim(block, dirty=write or vdirty)
            return SDC_LEVEL, latency
        latency += h.l2c.latency
        l2_hit = h.l2c.access(block, False)
        if h.l2_prefetcher is not None:
            for pf in h.l2_prefetcher.on_access(block, l2_hit):
                if not h.l2c.contains(pf):
                    h._fill_l2(pf, prefetch=True)
        if l2_hit:
            self._fill_l1_victim(block, dirty=write)
            return L2C, latency
        latency += h.llc.latency
        if h.llc.access(block, False, aux=aux):
            h._fill_l2(block)
            self._fill_l1_victim(block, dirty=write)
            return LLC, latency
        latency += h.dram.read(block)
        h._fill_llc(block, aux=aux)
        h._fill_l2(block)
        self._fill_l1_victim(block, dirty=write)
        return DRAM, latency

    def _access_lp_bypass(self, block: int, write: bool
                          ) -> tuple[int, int]:
        """Irregular path of the SDC-less ablation: skip the L2C/LLC
        lookups, go to DRAM after a directory check, fill only the L1D."""
        h = self.hierarchy
        latency = h.l1d.latency
        l1_hit = h.l1d.access(block, write)
        if h.l1_prefetcher is not None:
            for pf in h.l1_prefetcher.on_access(block, l1_hit):
                if not h.l1d.contains(pf):
                    h._fill_l1(pf, prefetch=True)
        if l1_hit:
            return L1D, latency
        latency += self.config.sdc_miss_dir_latency
        # The directory still finds copies below; serve them if present.
        if h.l2c.contains(block):
            latency += h.l2c.latency
            h.l2c.access(block, False)
            h._fill_l1(block, dirty=write)
            return L2C, latency
        if h.llc.contains(block):
            latency += h.llc.latency
            h.llc.access(block, False)
            h._fill_l1(block, dirty=write)
            return LLC, latency
        latency += h.dram.read(block)
        h._fill_l1(block, dirty=write)
        return DRAM, latency

    # -- main loop -----------------------------------------------------------
    def run(self, trace: Trace, record_levels: bool = False,
            warmup: int = 0, flush_sdc_every: int | None = None,
            backend: str | None = None) -> SystemStats:
        """Simulate a trace; ``warmup`` leading accesses touch state but
        are excluded from the timing/stat windows (paper §IV-C).

        ``flush_sdc_every`` models a hypothetical non-VIPT SDC that must
        be flushed on context switches (every N accesses): dirty SDC
        lines write back and the LP table clears.  §III-E argues the
        real SDC is VIPT and needs no flush; the context-switch study
        quantifies what that property is worth.

        ``backend`` picks the execution engine behind this seam:
        ``"ref"`` is the reference Python loop below, ``"batch"`` the
        compiled structure-of-arrays kernel (:mod:`repro.core.batch`),
        bit-identical by construction.  ``None`` defers to the
        ``REPRO_BACKEND`` environment variable (default ``ref``).  The
        batch backend silently falls back here whenever the run is
        outside its supported envelope (no compiler, invariant checking
        armed, exotic policies, warm state — see
        ``repro.core.batch.backend.unsupported_reason``).
        """
        if resolve_backend(backend) == "batch":
            stats = try_run_batch(self, trace, record_levels=record_levels,
                                  warmup=warmup,
                                  flush_sdc_every=flush_sdc_every)
            if stats is not None:
                return stats
        acc = trace.accesses
        n = len(acc)
        blocks_np = (acc["addr"] >> BLOCK_BITS).astype(np.int64)
        pcs = acc["pc"].astype(np.int64).tolist()
        blocks = blocks_np.tolist()
        writes = acc["write"].tolist()
        gaps = acc["gap"].tolist()
        deps = acc["dep"].tolist()
        # 4 KiB pages for the TLB (precomputed to keep the loop lean).
        pages = (acc["addr"] >> 12).astype(np.int64).tolist() \
            if self.tlb is not None else [0] * n

        aux_list = self._precompute_aux(trace, blocks_np)
        if aux_list is None:
            aux_list = [None] * n
        levels = np.zeros(n, dtype=np.uint8) if record_levels else None

        timer = CoreTimer(self.config.core, self.config.l1d.mshr_entries,
                          self.config.l1d.latency,
                          sdc_mshr_entries=self.config.sdc.mshr_entries)
        completions = [0.0] * n
        hierarchy = self.hierarchy
        lp = self.lp
        clp = self.clp
        has_sdc = self.has_sdc
        expert = self.variant == "expert"
        expert_irr = self._expert_block_classifier(trace, blocks_np) \
            if expert else None

        # Hot loop: every per-access attribute/method lookup is hoisted
        # into a local, and the record fields stream through one zip
        # instead of five indexed list reads per iteration.
        tlb = self.tlb
        stats_reset_at = min(warmup, n)
        flush_every = flush_sdc_every or 0
        check_every = self._check_every
        tele_every = self._telemetry_every
        probe = WindowProbe(tele_every,
                            lambda: single_core_snapshot(self, timer)) \
            if tele_every else None
        probe_sample = probe.sample if probe is not None else None
        tlb_translate = tlb.translate_page if tlb is not None else None
        timer_access = timer.access
        hierarchy_access = hierarchy.access_fast
        lp_predict = lp.predict_and_update if lp is not None else None
        clp_predict = clp.predict if clp is not None else None
        clp_update = clp.update if clp is not None else None
        sdc_access = self._access_via_sdc
        regular_access = self._access_regular_with_sdc
        victim_access = self._access_victim
        bypass_access = self._access_lp_bypass
        is_victim = self.victim is not None
        is_bypass = self.variant == "lp_bypass"

        for i, (block, pc, write, gap, dep, aux, page) in enumerate(
                zip(blocks, pcs, writes, gaps, deps, aux_list, pages)):
            if flush_every and i and i % flush_every == 0:
                self._flush_sdc_state()
            if warmup and i == stats_reset_at:
                self._reset_stats()
                timer = CoreTimer(
                    self.config.core, self.config.l1d.mshr_entries,
                    self.config.l1d.latency,
                    sdc_mshr_entries=self.config.sdc.mshr_entries)
                timer_access = timer.access
                if probe is not None:
                    # Discard warm-up windows; the timeline measures
                    # the same window the stats do (paper §IV-C).
                    probe = WindowProbe(
                        tele_every,
                        lambda: single_core_snapshot(self, timer))
                    probe_sample = probe.sample
            tlb_latency = tlb_translate(page) if tlb_translate is not None \
                else 0

            pool = 0
            if has_sdc:
                if expert:
                    irregular = expert_irr[i]
                elif clp_predict is not None:
                    irregular = clp_predict(pc)
                else:
                    irregular = lp_predict(pc, block)
                if irregular:
                    level, latency = sdc_access(block, write)
                    pool = 1            # SDC's own MSHR file (Table I)
                else:
                    level, latency = regular_access(block, write, aux,
                                                    pc=pc)
                if clp_update is not None:
                    clp_update(pc, level)
            elif is_victim:
                level, latency = victim_access(block, write, aux)
            elif is_bypass:
                if lp_predict(pc, block):
                    level, latency = bypass_access(block, write)
                else:
                    level, latency = hierarchy_access(block, write, aux,
                                                      pc)
            else:
                level, latency = hierarchy_access(block, write, aux, pc)

            dep_c = completions[dep] if dep >= 0 else None
            completions[i] = timer_access(gap, latency + tlb_latency,
                                          dep_c, pool)
            if levels is not None:
                levels[i] = level
            if tele_every and (i + 1 - stats_reset_at) % tele_every == 0:
                probe_sample()
            if check_every and (i + 1) % check_every == 0:
                check_single_core_system(self, {
                    "access": i, "pc": pc, "block": block,
                    "level": level})

        if check_every and n:
            check_single_core_system(self, {"access": n - 1,
                                            "position": "end-of-run"})
        return SystemStats(
            variant=self.variant,
            instructions=timer.instructions,
            cycles=timer.cycles,
            l1d=hierarchy.l1d.stats,
            l2c=hierarchy.l2c.stats,
            llc=hierarchy.llc.stats,
            sdc=self.sdc.stats if self.sdc else None,
            dram=hierarchy.dram.stats,
            lp=lp.stats if lp else (clp.stats if clp is not None else None),
            levels=levels,
            tlb=tlb.stats if tlb else None,
            timeline=probe.timeline() if probe is not None else None)

    # -- helpers ---------------------------------------------------------------
    def _precompute_aux(self, trace: Trace, blocks: np.ndarray):
        """Per-access aux values for the LLC policy, by variant.

        Memoized per trace identity (see ``_trace_aux_memo``) — the aux
        feeds are pure trace functions and dominated short-run startup.
        """
        if self.variant == "topt":
            memo = _trace_aux_memo(trace)
            lst = memo.get("topt_list")
            if lst is None:
                nxt, irr = topt_aux_arrays(trace, blocks)
                lst = list(zip(nxt.tolist(), irr.tolist()))
                memo["topt_list"] = lst
            return lst
        if self.variant == "distill":
            # Word index within the block (8 B words).
            memo = _trace_aux_memo(trace)
            lst = memo.get("distill_list")
            if lst is None:
                lst = distill_aux_words(trace).tolist()
                memo["distill_list"] = lst
            return lst
        if self.config.llc.replacement == "ship":
            # SHiP keys its hit predictor on the access PC.
            memo = _trace_aux_memo(trace)
            lst = memo.get("ship_list")
            if lst is None:
                lst = trace.accesses["pc"].astype(np.int64).tolist()
                memo["ship_list"] = lst
            return lst
        return None

    def _expert_block_classifier(self, trace: Trace,
                                 blocks: np.ndarray) -> list[bool]:
        memo = _trace_aux_memo(trace)
        key = ("expert_list", frozenset(self.expert_regions))
        lst = memo.get(key)
        if lst is None:
            lst = expert_block_mask(trace, self.expert_regions).tolist()
            memo[key] = lst
        return lst

    def _flush_sdc_state(self) -> None:
        """Context-switch flush of the SDC and LP (see ``run``).

        Flush write-backs are accounted in the DRAM write counter but do
        not touch row-buffer state (they drain asynchronously between
        the switched processes, not ahead of the next access stream).
        """
        if self.sdc is not None:
            for _block in self.sdc.dirty_blocks():
                self.hierarchy.dram.stats.writes += 1
            self.sdc.flush()
            if self.sdcdir is not None:
                for s in self.sdcdir.sets:
                    s.clear()
        if self.lp is not None:
            for s in self.lp.sets:
                s.clear()
        if self.clp is not None:
            for s in self.clp.sets:
                s.clear()

    def _reset_stats(self) -> None:
        # The stat window no longer covers the caches' whole life, so
        # the fill/eviction/occupancy ledger cannot balance from here on.
        self._ledger_valid = False
        h = self.hierarchy
        h.l1d.stats = CacheStats()
        h.l2c.stats = CacheStats()
        h.llc.stats = CacheStats()
        h.dram.stats = DRAMStats()
        if self.sdc is not None:
            self.sdc.stats = CacheStats()
        if self.lp is not None:
            self.lp.stats = LPStats()
        if self.clp is not None:
            self.clp.stats = LPStats()
        if self.tlb is not None:
            self.tlb.stats = TLBStats()
