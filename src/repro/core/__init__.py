"""The paper's contribution: LP predictor + SDC + SDCDir + systems.

``SingleCoreSystem`` runs one trace under any evaluated design variant
(Baseline, SDC+LP, T-OPT, Distill, L1D-40KB-ISO, 2xLLC, Expert
Programmer); ``MultiCoreSystem`` runs 4-thread mixes with a shared LLC,
a MESI-style directory and per-core SDCDir extensions.
"""

from repro.core.budget import hardware_budget, table4
from repro.core.energy import energy_of, energy_per_kilo_instruction
from repro.core.expert import expert_regions_best, expert_regions_for
from repro.core.lp import LargePredictor
from repro.core.multicore import MultiCoreSystem
from repro.core.sdcdir import SDCDirectory
from repro.core.system import SingleCoreSystem, SystemStats, VARIANTS

__all__ = [
    "LargePredictor",
    "SDCDirectory",
    "SingleCoreSystem",
    "MultiCoreSystem",
    "SystemStats",
    "VARIANTS",
    "hardware_budget",
    "table4",
    "energy_of",
    "energy_per_kilo_instruction",
    "expert_regions_for",
    "expert_regions_best",
]
