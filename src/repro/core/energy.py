"""Dynamic-energy accounting (§V-E extended to whole-system numbers).

The paper reports CACTI 22 nm access energies for its new structures
(LP 0.010/0.015 nJ, SDCDir 0.014/0.019 nJ, SDC 0.026/0.034 nJ read/
write).  To compare designs end-to-end we pair those with typical
CACTI-class energies for the conventional structures (documented
below; the *relative* conclusion — SDC+LP removes L2C/LLC lookups and
their energy — is insensitive to the exact constants).

Energy = Σ (structure accesses × per-access energy), computed from the
counters a simulation already collects, so this costs nothing extra at
run time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.budget import (LP_READ_NJ, LP_WRITE_NJ, SDC_READ_NJ,
                               SDC_WRITE_NJ, SDCDIR_READ_NJ,
                               SDCDIR_WRITE_NJ)

# Typical 22 nm dynamic energies per access (nJ), CACTI-class values for
# the Table I geometries.  DRAM figure is per-64B-burst at the device
# (row activation amortized into the hit/miss mix).
L1D_NJ = 0.05
L2C_NJ = 0.25
LLC_NJ = 0.60
TLB_L2_NJ = 0.01
PAGE_WALK_NJ = 0.40
DRAM_READ_NJ = 15.0
DRAM_WRITE_NJ = 15.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-structure dynamic energy of one run, in millijoules."""

    l1d: float
    l2c: float
    llc: float
    sdc: float
    lp: float
    sdcdir: float
    tlb: float
    dram: float

    @property
    def total(self) -> float:
        return (self.l1d + self.l2c + self.llc + self.sdc + self.lp
                + self.sdcdir + self.tlb + self.dram)

    @property
    def on_chip(self) -> float:
        return self.total - self.dram

    def row(self) -> list[float]:
        return [self.l1d, self.l2c, self.llc, self.sdc, self.lp,
                self.sdcdir, self.tlb, self.dram, self.total]


def energy_of(stats) -> EnergyBreakdown:
    """Compute the dynamic-energy breakdown of a ``SystemStats``.

    Reads are lookups, writes are fills/writebacks; each cache's fill
    traffic is approximated by its miss count (every miss causes one
    fill at that level in our fill-on-miss hierarchy).
    """
    def cache_energy(cs, nj) -> float:
        if cs is None:
            return 0.0
        # lookups + fills (≈ misses) + writebacks, all at ~the same cost.
        return nj * (cs.accesses + cs.misses + cs.writebacks) * 1e-6

    lp_mj = 0.0
    if stats.lp is not None:
        # Every consult is one read plus one entry update (write).
        lp_mj = (LP_READ_NJ + LP_WRITE_NJ) * stats.lp.lookups * 1e-6

    sdcdir_mj = 0.0
    sdc_mj = 0.0
    if stats.sdc is not None:
        sdc_mj = (SDC_READ_NJ * stats.sdc.accesses
                  + SDC_WRITE_NJ * (stats.sdc.misses
                                    + stats.sdc.writebacks)) * 1e-6
        # Directory consulted on every SDC miss (§III-A) plus evictions.
        sdcdir_mj = (SDCDIR_READ_NJ * stats.sdc.misses
                     + SDCDIR_WRITE_NJ * stats.sdc.evictions) * 1e-6

    tlb_mj = 0.0
    if stats.tlb is not None:
        walks = stats.tlb.walks
        l2_lookups = stats.tlb.accesses - stats.tlb.l1_hits
        tlb_mj = (TLB_L2_NJ * l2_lookups + PAGE_WALK_NJ * walks) * 1e-6

    dram_mj = (DRAM_READ_NJ * stats.dram.reads
               + DRAM_WRITE_NJ * stats.dram.writes) * 1e-6

    return EnergyBreakdown(
        l1d=cache_energy(stats.l1d, L1D_NJ),
        l2c=cache_energy(stats.l2c, L2C_NJ),
        llc=cache_energy(stats.llc, LLC_NJ),
        sdc=sdc_mj,
        lp=lp_mj,
        sdcdir=sdcdir_mj,
        tlb=tlb_mj,
        dram=dram_mj,
    )


def energy_per_kilo_instruction(stats) -> float:
    """Dynamic energy per 1000 instructions, in microjoules."""
    if stats.instructions == 0:
        return 0.0
    return energy_of(stats).total * 1e3 / (stats.instructions / 1000.0)
