"""SDCDir — the cache-directory extension tracking SDC contents (§III-C).

Every block resident in any SDC has an SDCDir entry holding its tag,
coherence state and a sharer bit-vector (Fig. 6).  The structure is
set-associative and capacity-limited: when an SDCDir entry is evicted,
all SDC copies of that block are invalidated (written back if dirty),
so SDC contents are always a subset of SDCDir contents — the invariant
the coherence tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SDCDirConfig


@dataclass
class SDCDirStats:
    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    evictions: int = 0


class SDCDirectory:
    """Set-associative directory over SDC-resident blocks."""

    def __init__(self, config: SDCDirConfig | None = None,
                 num_cores: int = 1):
        self.config = config or SDCDirConfig()
        self.num_cores = num_cores
        self.entries = self.config.entries_per_core * num_cores
        self.ways = self.config.ways
        self.num_sets = max(1, self.entries // self.ways)
        self.latency = self.config.latency
        # Per set: dict block -> [sharer_bits, dirty_core, lru]
        # dirty_core is -1 when clean, else the owning core id.
        self.sets: list[dict[int, list[int]]] = [dict()
                                                 for _ in range(self.num_sets)]
        # Power-of-two set counts (the common case) index with a mask;
        # sentinel -1 selects the mod fallback.
        if self.num_sets & (self.num_sets - 1) == 0:
            self._set_mask = self.num_sets - 1
        else:
            self._set_mask = -1
        self._clock = 0
        self.stats = SDCDirStats()

    def _lines(self, block: int) -> dict[int, list[int]]:
        mask = self._set_mask
        return self.sets[block & mask if mask >= 0
                         else block % self.num_sets]

    def lookup(self, block: int, touch: bool = True) -> list[int] | None:
        """Probe without allocation; returns the entry or None.

        ``touch=True`` (an access with allocation/reuse intent) bumps
        the entry's recency; ``touch=False`` is a pure coherence probe
        that must not perturb victim choice — read-only consultations
        (miss-path directory messages, residency checks) use it so they
        cannot keep dead entries alive.
        """
        self.stats.lookups += 1
        lines = self._lines(block)
        entry = lines.get(block)
        if entry is not None:
            self.stats.hits += 1
            if touch:
                self._clock += 1
                entry[2] = self._clock
                # Keep each set's dict in LRU order (see insert()).
                del lines[block]
                lines[block] = entry
        return entry

    def sharers(self, block: int) -> int:
        """Sharer bit-vector of a block (recency-neutral probe)."""
        entry = self._lines(block).get(block)
        return entry[0] if entry is not None else 0

    def insert(self, block: int, core: int, dirty: bool
               ) -> list[int] | None:
        """Register a block entering core's SDC.

        Returns ``[evicted_block, sharer_bits, dirty_core]`` when a
        victim entry had to be displaced (its SDC copies must be
        invalidated by the caller), else None.
        """
        lines = self._lines(block)
        self._clock += 1
        entry = lines.get(block)
        if entry is not None:
            entry[0] |= 1 << core
            if dirty:
                entry[1] = core
            entry[2] = self._clock
            del lines[block]
            lines[block] = entry
            return None
        self.stats.inserts += 1
        displaced = None
        if len(lines) >= self.ways:
            # Dict order is LRU order (every recency bump moves the
            # entry to the end), so the victim is the first key.
            victim = next(iter(lines))
            v = lines.pop(victim)
            self.stats.evictions += 1
            displaced = [victim, v[0], v[1]]
        lines[block] = [1 << core, core if dirty else -1, self._clock]
        return displaced

    def remove_sharer(self, block: int, core: int) -> tuple[bool, bool]:
        """Drop core's sharer bit; returns ``(was_present,
        was_dirty_owner)``.

        When the departing core was the dirty owner, its SDC copy held
        the only valid data — the caller must either write the line
        back to DRAM or hand the dirty payload to whoever takes over
        (e.g. an L1 fill with ``dirty=True``).  Silently discarding the
        second flag loses a writeback.
        """
        lines = self._lines(block)
        entry = lines.get(block)
        if entry is None:
            return False, False
        was_dirty_owner = entry[1] == core
        entry[0] &= ~(1 << core)
        if was_dirty_owner:
            entry[1] = -1
        if entry[0] == 0:
            del lines[block]
        return True, was_dirty_owner

    def drop(self, block: int) -> None:
        self._lines(block).pop(block, None)

    def mark_dirty(self, block: int, core: int) -> None:
        entry = self._lines(block).get(block)
        if entry is not None:
            entry[1] = core

    def clear_dirty(self, block: int) -> bool:
        """Clear dirty ownership (the owning SDC's copy was cleaned and
        written back); returns True when an owner was recorded.

        Keeps the directory's dirty state in lock-step with the SDC
        line's dirty bit — the agreement the coherence invariants
        assert."""
        entry = self._lines(block).get(block)
        if entry is None or entry[1] < 0:
            return False
        entry[1] = -1
        return True

    def tracked_blocks(self):
        for lines in self.sets:
            yield from lines
