"""Multi-core system: 4 cores, private L1D/L2C/SDC, shared LLC (§IV-D).

* Each core has its own L1D, L2C, LP and SDC; the LLC and DRAM are
  shared, so multiprogrammed mixes contend for LLC capacity and DRAM row
  buffers exactly as in the paper's setup.
* Coherence: an MSI-style directory guards private-cache copies and the
  SDCDir (shared, per-core banked capacity) guards SDC copies.  The
  paper's mixes are multiprogrammed (disjoint address spaces, which we
  guarantee by giving each core its own address-space offset), but the
  protocol is fully implemented and exercised by the coherence tests
  with crafted shared-address streams.
* Scheduling interleaves cores by front-end progress (the core with the
  smallest issue clock runs next), which approximates concurrent
  execution without a global event queue.
* Methodology: cores that finish their trace replay it to keep
  contention alive until every core completes its first pass, but only
  first-pass cycles/stats count (standard weighted-speedup practice).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.config import BLOCK_BITS, SystemConfig
from repro.core.batch import resolve_backend
from repro.core.clp import CacheLevelPredictor
from repro.core.lp import LargePredictor
from repro.core.sdcdir import SDCDirectory
from repro.core.system import (SDC_VARIANTS, SystemStats, VARIANTS,
                               irregular_access_mask, next_use_indices,
                               variant_config)
from repro.mem.cache import SetAssocCache
from repro.mem.distill import DistillCache
from repro.mem.dram import DRAMModel
from repro.mem.hierarchy import (DRAM, L1D, L2C, LLC, SDC_LEVEL, REMOTE,
                                 MemoryHierarchy)
from repro.mem.replacement import BeladyOPT, make_policy
from repro.mem.timing import CoreTimer
from repro.mem.tlb import TLBHierarchy
from repro.telemetry import telemetry_interval
from repro.telemetry.probes import WindowProbe, multicore_snapshot
from repro.trace.record import Trace
from repro.validate import check_interval
from repro.validate.invariants import check_multicore_system

CORE_ADDR_STRIDE = 1 << 44   # bytes of VA space reserved per core


@dataclass
class MultiCoreResult:
    """Per-core stats plus the shared-structure aggregates."""

    per_core: list[SystemStats]
    llc_accesses: int
    llc_misses: int

    def ipcs(self) -> list[float]:
        return [s.ipc for s in self.per_core]


class MultiCoreSystem:
    """N cores running one trace each under a design variant."""

    def __init__(self, config: SystemConfig | None = None,
                 variant: str = "baseline",
                 expert_regions: list[set[int]] | None = None,
                 check_every: int | None = None,
                 telemetry_every: int | None = None):
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}")
        if variant in ("victim", "lp_bypass"):
            raise ValueError(f"{variant!r} is a single-core-only ablation")
        self._check_every = check_interval(check_every)
        self._telemetry_every = telemetry_interval(telemetry_every)
        base = config or SystemConfig(num_cores=4)
        self.config = variant_config(base, variant)
        self.variant = variant
        self.num_cores = max(1, self.config.num_cores)
        self.expert_regions = expert_regions

        # Shared structures.
        if variant == "distill":
            self.llc = DistillCache(self._shared_llc_config())
        else:
            policy = (BeladyOPT(irregular_only=True) if variant == "topt"
                      else make_policy(self.config.llc.replacement))
            self.llc = SetAssocCache(self._shared_llc_config(), policy)
        self.dram = DRAMModel(self.config.dram)
        self.directory: dict[int, list[int]] = {}   # block -> [sharers, owner]
        self.has_sdc = variant in SDC_VARIANTS
        self.sdcdir = SDCDirectory(self.config.sdcdir, self.num_cores) \
            if self.has_sdc else None

        # Private structures.
        self.cores: list[MemoryHierarchy] = []
        self.sdcs: list[SetAssocCache | None] = []
        self.lps: list[LargePredictor | None] = []
        self.clps: list[CacheLevelPredictor | None] = []
        self.tlbs: list[TLBHierarchy] = []
        for _ in range(self.num_cores):
            h = MemoryHierarchy(self.config, llc=self.llc, dram=self.dram)
            self.cores.append(h)
            self.sdcs.append(SetAssocCache(self.config.sdc)
                             if self.has_sdc else None)
            self.lps.append(LargePredictor(self.config.lp)
                            if variant in ("sdc_lp", "sdc_lp_tagless")
                            else None)
            self.clps.append(CacheLevelPredictor(self.config.clp)
                             if variant == "sdc_clp" else None)
            self.tlbs.append(TLBHierarchy())

    def _shared_llc_config(self):
        # Table I: 1.375 MiB *per core* — the shared LLC scales with the
        # core count (sets multiply, associativity fixed).
        import dataclasses
        llc = self.config.llc
        return dataclasses.replace(
            llc, size_bytes=llc.size_bytes * self.num_cores)

    # -- coherence actions ---------------------------------------------------
    def _dir_entry(self, block: int) -> list[int]:
        e = self.directory.get(block)
        if e is None:
            e = [0, -1]
            self.directory[block] = e
        return e

    def _invalidate_remote(self, block: int, requester: int,
                           include_sdc: bool = True) -> bool:
        """Invalidate all other cores' copies; True if a dirty copy was
        written back (the requester must then see DRAM/LLC latency)."""
        entry = self.directory.get(block)
        wrote_back = False
        if entry is not None and entry[0]:
            for c in range(self.num_cores):
                if c == requester or not (entry[0] & (1 << c)):
                    continue
                _, d1 = self.cores[c].l1d.invalidate(block)
                _, d2 = self.cores[c].l2c.invalidate(block)
                if d1 or d2:
                    self.dram.write(block)
                    wrote_back = True
            entry[0] &= 1 << requester
            if entry[1] != requester:
                entry[1] = -1
        if include_sdc and self.sdcdir is not None:
            sharers = self.sdcdir.sharers(block)
            for c in range(self.num_cores):
                if c == requester or not (sharers & (1 << c)):
                    continue
                was, dirty = self.sdcs[c].invalidate(block)
                # Honour either dirty flag (line or directory ownership)
                # so a writeback cannot be lost to a stale one.
                _, was_owner = self.sdcdir.remove_sharer(block, c)
                if (was and dirty) or was_owner:
                    self.dram.write(block)
                    wrote_back = True
        return wrote_back

    def _fetch_remote_dirty(self, block: int, requester: int) -> bool:
        """If a remote core owns the block dirty, collect it into the LLC.
        Returns True when a remote transfer happened."""
        entry = self.directory.get(block)
        if entry is None or entry[1] in (-1, requester):
            return False
        owner = entry[1]
        _, d1 = self.cores[owner].l1d.invalidate(block)
        _, d2 = self.cores[owner].l2c.invalidate(block)
        entry[0] &= ~(1 << owner)
        entry[1] = -1
        if d1 or d2:
            self._llc_fill(block, dirty=True)
            return True
        return False

    def _llc_fill(self, block: int, dirty: bool = False, aux=None) -> None:
        evicted = self.llc.fill(block, dirty=dirty, aux=aux)
        if evicted is not None and evicted[1]:
            self.dram.write(evicted[0])

    # -- per-core access paths -------------------------------------------------
    def _access_hierarchy(self, core: int, block: int, write: bool, aux
                          ) -> tuple[int, int]:
        h = self.cores[core]
        latency = h.l1d.latency
        l1_hit = h.l1d.access(block, write)
        if h.l1_prefetcher is not None:
            for pf in h.l1_prefetcher.on_access(block, l1_hit):
                if (not h.l1d.contains(pf) and not self._in_sdc(pf)
                        and not self._remote_dirty(pf, core)):
                    h._fill_l1(pf, prefetch=True)
                    self._dir_entry(pf)[0] |= 1 << core
        if l1_hit:
            if write:
                entry = self._dir_entry(block)
                if entry[1] != core and entry[0] & ~(1 << core):
                    self._invalidate_remote(block, core)
                entry[1] = core
                # _invalidate_remote spares the requester, but the write
                # also stales a clean duplicate in the requester's *own*
                # SDC (left by an earlier shared read) — drop it.
                if self.sdcdir is not None \
                        and self.sdcdir.sharers(block) & (1 << core):
                    self.sdcs[core].invalidate(block)
                    self.sdcdir.remove_sharer(block, core)
            return L1D, latency

        # Parallel SDCDir probe (paper §III-C): a copy in some SDC is
        # transferred into this core's L1D.
        if self.sdcdir is not None:
            sharers = self.sdcdir.sharers(block)
            if sharers:
                owner = (sharers & -sharers).bit_length() - 1
                latency += max(h.l2c.latency,
                               self.config.sdc.latency +
                               self.sdcdir.latency)
                if write:
                    # Claim exclusivity: all SDC copies are invalidated.
                    # A dirty copy's payload transfers into the L1 fill
                    # below (dirty=write), so the ownership flag dropped
                    # by remove_sharer incurs no writeback here.
                    for c in range(self.num_cores):
                        if sharers & (1 << c):
                            self.sdcs[c].invalidate(block)
                            self.sdcdir.remove_sharer(block, c)
                else:
                    if self.sdcs[owner].clear_dirty(block):
                        # Directory dirty ownership drops with the
                        # line's dirty bit (the copy was written back).
                        self.sdcdir.clear_dirty(block)
                        self.dram.write(block)
                h._fill_l1(block, dirty=write)
                entry = self._dir_entry(block)
                entry[0] |= 1 << core
                if write:
                    entry[1] = core
                return SDC_LEVEL, latency

        latency += h.l2c.latency
        l2_hit = h.l2c.access(block, False)
        if h.l2_prefetcher is not None:
            for pf in h.l2_prefetcher.on_access(block, l2_hit):
                if (not h.l2c.contains(pf) and not self._in_sdc(pf)
                        and not self._remote_dirty(pf, core)):
                    h._fill_l2(pf, prefetch=True)
                    self._dir_entry(pf)[0] |= 1 << core
        entry = self._dir_entry(block)
        if l2_hit:
            if write and entry[0] & ~(1 << core):
                self._invalidate_remote(block, core)
            h._fill_l1(block, dirty=write)
            entry[0] |= 1 << core
            if write:
                entry[1] = core
            return L2C, latency

        remote = self._fetch_remote_dirty(block, core)
        if write and entry[0] & ~(1 << core):
            self._invalidate_remote(block, core)
        latency += h.llc.latency
        if self.llc.access(block, False, aux=aux):
            h._fill_l2(block)
            h._fill_l1(block, dirty=write)
            entry[0] |= 1 << core
            if write:
                entry[1] = core
            return (REMOTE if remote else LLC), latency

        latency += self.dram.read(block)
        self._llc_fill(block, aux=aux)
        h._fill_l2(block)
        h._fill_l1(block, dirty=write)
        entry[0] |= 1 << core
        if write:
            entry[1] = core
        return DRAM, latency

    def _in_sdc(self, block: int) -> bool:
        return self.sdcdir is not None and self.sdcdir.sharers(block) != 0

    def _remote_dirty(self, block: int, core: int) -> bool:
        """True when another core dirty-owns the block (prefetches must
        not break the single-writer invariant)."""
        entry = self.directory.get(block)
        return entry is not None and entry[1] not in (-1, core)

    def _access_via_sdc(self, core: int, block: int, write: bool
                        ) -> tuple[int, int]:
        """Irregular path with §III-C coherence: clean copies may be
        shared across SDCs and the hierarchy; writes claim exclusivity."""
        sdc = self.sdcs[core]
        latency = sdc.latency
        if sdc.access(block, write):
            if write:
                self.sdcdir.mark_dirty(block, core)
                self._claim_exclusive(block, core)
            self._sdc_prefetch(core, block + 1)
            return SDC_LEVEL, latency

        latency += self.config.sdc_miss_dir_latency
        if write:
            served = self._collect_for_write(block, core)
            if served is not None:
                latency += served
            else:
                latency += self.dram.read(block)
            self._sdc_fill(core, block, dirty=True)
            self._sdc_prefetch(core, block + 1)
            return (L2C if served is not None else DRAM), latency

        # Read: serve from the nearest valid copy, leaving it in place
        # (cleaned if it was dirty).
        sharers = self.sdcdir.sharers(block)
        if sharers & ~(1 << core):
            owner = (sharers & -sharers).bit_length() - 1
            latency += self.config.sdc.latency
            if self.sdcs[owner].clear_dirty(block):
                self.dram.write(block)
                self.sdcdir.clear_dirty(block)
            self._sdc_fill(core, block, dirty=False)
            self._sdc_prefetch(core, block + 1)
            return REMOTE, latency
        for c in range(self.num_cores):
            h = self.cores[c]
            for cache in (h.l1d, h.l2c):
                if cache.contains(block):
                    # Clean every copy the serving core holds (the dirty
                    # bit may sit at a deeper level than the one that
                    # serves, e.g. clean L1 refetch above a dirty L2
                    # line) plus a dirty LLC copy left by an earlier
                    # collect — a dirty line below a clean shared SDC
                    # copy breaks single-valid-copy.  MSI guarantees no
                    # *other* core holds a dirty private copy.
                    d1 = h.l1d.clear_dirty(block)
                    d2 = h.l2c.clear_dirty(block)
                    dllc = self.llc.clear_dirty(block)
                    if d1 or d2 or dllc:
                        self.dram.write(block)
                        entry = self.directory.get(block)
                        if entry is not None and entry[1] == c:
                            entry[1] = -1
                    latency += cache.latency if c == core \
                        else h.l2c.latency
                    self._sdc_fill(core, block, dirty=False)
                    self._sdc_prefetch(core, block + 1)
                    return (L2C if c == core else REMOTE), latency
        if self.llc.contains(block):
            latency += self.llc.latency
            if self.llc.clear_dirty(block):
                self.dram.write(block)
            self._sdc_fill(core, block, dirty=False)
            self._sdc_prefetch(core, block + 1)
            return LLC, latency
        latency += self.dram.read(block)
        self._sdc_fill(core, block, dirty=False)
        self._sdc_prefetch(core, block + 1)
        return DRAM, latency

    def _claim_exclusive(self, block: int, core: int) -> None:
        """Invalidate every copy outside core's SDC (write upgrade)."""
        self._invalidate_remote(block, core)
        h = self.cores[core]
        _, d1 = h.l1d.invalidate(block)
        _, d2 = h.l2c.invalidate(block)
        self.llc.invalidate(block)
        entry = self.directory.get(block)
        if entry is not None:
            entry[0] &= ~(1 << core)
            if entry[1] == core:
                entry[1] = -1

    def _collect_for_write(self, block: int, core: int) -> int | None:
        """Gather/invalidate all copies before a write fill; returns the
        probe latency when any copy existed, else None."""
        found = None
        sharers = self.sdcdir.sharers(block)
        if sharers & ~(1 << core):
            # Dirty payloads transfer into the requester's write fill,
            # so the ownership flag remove_sharer drops needs no
            # writeback here (same as the write-claim path above).
            for c in range(self.num_cores):
                if c != core and sharers & (1 << c):
                    self.sdcs[c].invalidate(block)
                    self.sdcdir.remove_sharer(block, c)
            found = self.config.sdc.latency
        for c in range(self.num_cores):
            h = self.cores[c]
            p1, _ = h.l1d.invalidate(block)
            p2, _ = h.l2c.invalidate(block)
            if p1 or p2:
                entry = self.directory.get(block)
                if entry is not None:
                    entry[0] &= ~(1 << c)
                    if entry[1] == c:
                        entry[1] = -1
                if c == core:
                    # Deepest own-core level actually probed — charging
                    # the L1 latency for an L2-only copy understates the
                    # collect cost (MemoryHierarchy.extract semantics).
                    probe = max(h.l1d.latency if p1 else 0,
                                h.l2c.latency if p2 else 0)
                else:
                    probe = h.l2c.latency
                found = max(found or 0, probe)
        was, _ = self.llc.invalidate(block)
        if was:
            found = max(found or 0, self.llc.latency)
        return found

    def _sdc_fill(self, core: int, block: int, dirty: bool) -> None:
        sdc = self.sdcs[core]
        displaced = self.sdcdir.insert(block, core, dirty)
        if displaced is not None:
            ev_block, sharers, owner = displaced
            for c in range(self.num_cores):
                if sharers & (1 << c):
                    was, was_dirty = self.sdcs[c].invalidate(ev_block)
                    if (was and was_dirty) or owner == c:
                        self.dram.write(ev_block)
        evicted = sdc.fill(block, dirty=dirty)
        if evicted is not None:
            ev_block, ev_dirty = evicted
            _, was_owner = self.sdcdir.remove_sharer(ev_block, core)
            if ev_dirty or was_owner:
                self.dram.write(ev_block)

    def _sdc_prefetch(self, core: int, block: int) -> None:
        sdc = self.sdcs[core]
        if self.config.sdc.prefetcher is None:
            return
        if sdc.contains(block):
            return
        for h in self.cores:
            if h.l1d.contains(block) or h.l2c.contains(block):
                return
        if self.llc.contains(block):
            return
        displaced = self.sdcdir.insert(block, core, False)
        if displaced is not None:
            ev_block, sharers, owner = displaced
            for c in range(self.num_cores):
                if sharers & (1 << c):
                    was, was_dirty = self.sdcs[c].invalidate(ev_block)
                    if (was and was_dirty) or owner == c:
                        self.dram.write(ev_block)
        evicted = sdc.fill(block, prefetch=True)
        if evicted is not None:
            ev_block, ev_dirty = evicted
            _, was_owner = self.sdcdir.remove_sharer(ev_block, core)
            if ev_dirty or was_owner:
                self.dram.write(ev_block)

    # -- the run loop ------------------------------------------------------------
    def run(self, traces: list[Trace], offset_address_spaces: bool = True,
            backend: str | None = None) -> MultiCoreResult:
        """Run one trace per core to first-pass completion.

        ``backend`` is accepted for seam symmetry with
        :meth:`SingleCoreSystem.run` and validated, but the multi-core
        loop always executes on the reference path: cores interleave
        access-by-access on their front-end clocks, which the batch
        kernel (one linear trace, one core) cannot express.  A
        ``"batch"`` request therefore falls back here by design.
        """
        resolve_backend(backend)
        if len(traces) != self.num_cores:
            raise ValueError(f"need {self.num_cores} traces, "
                             f"got {len(traces)}")
        n_cores = self.num_cores
        streams = []
        for c, trace in enumerate(traces):
            acc = trace.accesses
            blocks = (acc["addr"] >> BLOCK_BITS).astype(np.int64)
            if offset_address_spaces:
                blocks = blocks + c * (CORE_ADDR_STRIDE >> BLOCK_BITS)
            aux = None
            if self.variant == "topt":
                nxt = next_use_indices(blocks)
                irr = irregular_access_mask(trace)
                aux = list(zip(nxt.tolist(), irr.tolist()))
            elif self.variant == "distill":
                aux = ((acc["addr"] >> 3) & 7).astype(np.int64).tolist()
            expert_irr = None
            if self.variant == "expert":
                space = trace.address_space
                rids = space.classify_addresses(acc["addr"].astype(np.int64))
                regions = (self.expert_regions[c]
                           if self.expert_regions else set())
                expert_irr = np.isin(rids, list(regions)).tolist()
            streams.append({
                "pcs": acc["pc"].astype(np.int64).tolist(),
                "blocks": blocks.tolist(),
                "pages": (blocks >> (12 - BLOCK_BITS)).tolist(),
                "writes": acc["write"].tolist(),
                "gaps": acc["gap"].tolist(),
                "deps": acc["dep"].tolist(),
                "aux": aux,
                "expert_irr": expert_irr,
                "n": len(acc),
            })

        timers = [CoreTimer(self.config.core, self.config.l1d.mshr_entries,
                            self.config.l1d.latency,
                            sdc_mshr_entries=self.config.sdc.mshr_entries)
                  for _ in range(n_cores)]
        completions = [[0.0] * s["n"] for s in streams]
        pos = [0] * n_cores
        first_pass_done = [s["n"] == 0 for s in streams]
        wrapped = [False] * n_cores
        snapshots: list[SystemStats | None] = [None] * n_cores

        llc_acc_start = self.llc.stats.accesses
        llc_miss_start = self.llc.stats.misses
        check_every = self._check_every
        tele_every = self._telemetry_every
        # One probe per core, sampled on that core's own access count
        # (first pass only — replayed accesses keep contention alive
        # but are not part of the measured window).
        probes = [WindowProbe(tele_every,
                              partial(multicore_snapshot, self, c,
                                      timers[c]))
                  for c in range(n_cores)] if tele_every else None
        total_accesses = 0

        while not all(first_pass_done):
            # Run the least-advanced core (by front-end clock); finished
            # cores keep replaying so contention stays realistic.
            core = min(range(n_cores), key=lambda c: timers[c].issue_time)
            s = streams[core]
            i = pos[core]
            block = s["blocks"][i]
            write = s["writes"][i]
            aux = s["aux"][i] if s["aux"] is not None else None

            pool = 0
            if self.has_sdc:
                clp = self.clps[core]
                if self.variant == "expert":
                    irregular = s["expert_irr"][i]
                elif clp is not None:
                    irregular = clp.predict(s["pcs"][i])
                else:
                    irregular = self.lps[core].predict_and_update(
                        s["pcs"][i], block)
                if irregular:
                    level, latency = self._access_via_sdc(core, block, write)
                    pool = 1
                else:
                    level, latency = self._access_hierarchy(core, block,
                                                            write, aux)
                if clp is not None:
                    clp.update(s["pcs"][i], level)
            else:
                level, latency = self._access_hierarchy(core, block, write,
                                                        aux)
            latency += self.tlbs[core].translate_page(s["pages"][i])
            dep = s["deps"][i]
            dep_c = completions[core][dep] if dep >= 0 and not wrapped[core] \
                else None
            completions[core][i] = timers[core].access(s["gaps"][i], latency,
                                                       dep_c, pool=pool)
            pos[core] += 1
            if tele_every and not wrapped[core] \
                    and pos[core] % tele_every == 0:
                probes[core].sample()
            if check_every:
                total_accesses += 1
                if total_accesses % check_every == 0:
                    check_multicore_system(self, {
                        "access": total_accesses, "core": core,
                        "block": block, "level": level})
            if pos[core] >= s["n"]:
                if not wrapped[core]:
                    first_pass_done[core] = True
                    snapshots[core] = self._snapshot(
                        core, timers[core],
                        probes[core].timeline() if probes else None)
                pos[core] = 0
                wrapped[core] = True

        if check_every:
            check_multicore_system(self, {"access": total_accesses,
                                          "position": "end-of-run"})
        per_core = [snap if snap is not None
                    else self._snapshot(c, timers[c],
                                        probes[c].timeline()
                                        if probes else None)
                    for c, snap in enumerate(snapshots)]
        return MultiCoreResult(
            per_core=per_core,
            llc_accesses=self.llc.stats.accesses - llc_acc_start,
            llc_misses=self.llc.stats.misses - llc_miss_start)

    def _snapshot(self, core: int, timer: CoreTimer,
                  timeline=None) -> SystemStats:
        import copy
        h = self.cores[core]
        return SystemStats(
            variant=self.variant,
            instructions=timer.instructions,
            cycles=timer.cycles,
            l1d=copy.copy(h.l1d.stats),
            l2c=copy.copy(h.l2c.stats),
            llc=copy.copy(self.llc.stats),
            sdc=copy.copy(self.sdcs[core].stats) if self.sdcs[core] else None,
            dram=copy.copy(self.dram.stats),
            lp=copy.copy(self.lps[core].stats) if self.lps[core]
            else (copy.copy(self.clps[core].stats)
                  if self.clps[core] else None),
            tlb=copy.copy(self.tlbs[core].stats),
            timeline=timeline)
