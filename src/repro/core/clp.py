"""The Cache-Level Predictor (CLP) — the ``sdc_clp`` variant.

An alternative irregularity predictor in the spirit of Jalili & Erez,
"Reducing Load Latency with Cache Level Prediction" (PAPERS.md): where
the LP classifies a PC by the *strides* between its accesses, the CLP
classifies it by the *level of the hierarchy that actually served*
them.  Each entry of a small PC-indexed, set-associative table keeps an
exponential moving average of a per-level weight (shallow levels pull
the counter toward 0, DRAM pulls it up); a PC whose counter has
reached ``tau_clp`` is predicted irregular and routed to the SDC.

Unlike the LP's combined consult+update (Fig. 4/5), prediction and
training are split: the serving level is only known *after* the access
completes, so the run loop calls :meth:`CacheLevelPredictor.predict`
before routing and :meth:`CacheLevelPredictor.update` afterwards — on
every access, both paths, so the predictor keeps learning about PCs it
routed to the SDC (an SDC-served access trains with the DRAM-class
weight: the routing decision stays sticky exactly like a saturated LP
stride accumulator).
"""

from __future__ import annotations

from repro.config import CLPConfig
from repro.core.lp import LPStats

#: Training weight per serving-level code (mem.hierarchy: L1D, L2C,
#: LLC, DRAM, SDC, REMOTE).  The EMA converges to the weight of a
#: steady serving level, so with tau_clp=8 a PC turns irregular only
#: once its accesses are being served predominantly below the L2C.
LEVEL_WEIGHTS = (0, 4, 12, 24, 24, 24)


class CLPEntry:
    """One CLP table entry: level-EMA counter + LRU stamp."""

    __slots__ = ("ctr", "stamp")

    def __init__(self, ctr: int, stamp: int):
        self.ctr = ctr
        self.stamp = stamp

    def __repr__(self) -> str:
        return f"CLPEntry(ctr={self.ctr}, stamp={self.stamp})"


class CacheLevelPredictor:
    """PC-indexed serving-level EMA predictor."""

    def __init__(self, config: CLPConfig | None = None):
        self.config = config or CLPConfig()
        self.num_sets = self.config.num_sets
        self.ways = self.config.ways
        self.tau = self.config.tau_clp
        self._set_bits = max(0, self.num_sets.bit_length() - 1)
        if 1 << self._set_bits != self.num_sets:
            raise ValueError("CLP set count must be a power of two")
        # Same PC indexing as the LP: drop the instruction-alignment
        # bits first (constant zero for 4-byte-aligned PCs).
        self._align_bits = 2
        self._set_mask = self.num_sets - 1
        self._ctr_max = self.config.ctr_max
        # Per set: dict tag -> CLPEntry
        self.sets: list[dict[int, CLPEntry]] = [dict()
                                                for _ in range(self.num_sets)]
        self._clock = 0
        self.stats = LPStats()

    def predict(self, pc: int) -> bool:
        """Consult the table; True when the PC is classified irregular.

        A table miss classifies regular and (re)initializes the LRU
        victim entry with a zero counter — the PC must *earn* SDC
        routing through deep-level service history.
        """
        st = self.stats
        st.lookups += 1
        idx = pc >> self._align_bits
        lines = self.sets[idx & self._set_mask]
        clock = self._clock + 1
        self._clock = clock
        entry = lines.get(idx >> self._set_bits)
        if entry is not None:
            st.table_hits += 1
            irregular = entry.ctr >= self.tau
            entry.stamp = clock
        else:
            st.table_misses += 1
            irregular = False
            if len(lines) >= self.ways:
                victim = min(lines, key=lambda t: lines[t].stamp)
                del lines[victim]
            lines[idx >> self._set_bits] = CLPEntry(0, clock)
        if irregular:
            st.predicted_irregular += 1
        else:
            st.predicted_regular += 1
        return irregular

    def update(self, pc: int, level: int) -> None:
        """Fold the serving level of a completed access into the EMA.

        ``predict`` allocated the entry on this very access, so the
        lookup cannot miss between the paired calls.
        """
        idx = pc >> self._align_bits
        entry = self.sets[idx & self._set_mask].get(idx >> self._set_bits)
        if entry is None:
            return
        ctr = (entry.ctr + LEVEL_WEIGHTS[level]) >> 1
        entry.ctr = ctr if ctr <= self._ctr_max else self._ctr_max

    def peek(self, pc: int) -> int | None:
        """Read the counter for a PC without updating (testing aid)."""
        idx = pc >> self._align_bits
        entry = self.sets[idx & self._set_mask].get(idx >> self._set_bits)
        return None if entry is None else entry.ctr
