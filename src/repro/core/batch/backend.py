"""Batch backend driver: SoA state, kernel dispatch, result rebuild.

:func:`try_run_batch` is the single entry point behind the dispatch
seam in ``SingleCoreSystem.run``.  It either simulates the whole trace
through the compiled structure-of-arrays kernel (``kernel.c``) and
returns a ``SystemStats`` that is bit-identical to what the reference
Python loop would have produced — including post-run cache/predictor/
TLB/DRAM state written back into the live Python objects — or returns
``None``, in which case the caller falls back to the reference path.

Fallback rules (any one triggers ``None``):

* the kernel could not be compiled/loaded (no C compiler, load error);
* invariant checking is armed (``check_every != 0`` — the per-access
  hooks need the Python loop);
* a structure uses a policy/prefetcher outside the supported set
  (inlined LRU, T-OPT Belady, distill LOC+WOC; next-line and SPP
  prefetchers) — notably the generic-LRU differential twin
  (``_lru is None``) falls back, keeping that twin meaningful;
* the system is not fresh (non-empty caches or non-zero counters):
  the kernel starts all stamp clocks from zero.
"""

from __future__ import annotations

import ctypes

import numpy as np

from repro.config import BLOCK_BITS
from repro.core.batch.build import load_kernel
from repro.core.lp import LPEntry, LPStats
from repro.core.sdcdir import SDCDirStats
from repro.mem.cache import CacheStats, SetAssocCache
from repro.mem.distill import DistillCache
from repro.mem.dram import DRAMStats
from repro.mem.prefetch import NextLinePrefetcher, SPPPrefetcher
from repro.mem.replacement import BeladyOPT
from repro.mem.tlb import TLBStats
from repro.telemetry.probes import WindowProbe, _Snapshot

NBUF = 87
ICFG_LEN = 80

_I64 = np.int64
_U8 = np.uint8


def _zeros(n, dtype=_I64):
    return np.zeros(max(int(n), 1), dtype=dtype)


def _full(n, value, dtype=_I64):
    return np.full(max(int(n), 1), value, dtype=dtype)


class _CacheSoA:
    """Flat arrays for one set-associative cache (or a dummy)."""

    def __init__(self, cache: SetAssocCache | None):
        self.cache = cache
        if cache is None:
            self.sets, self.ways = 1, 1
            self.latency, self.mask, self.bits = 0, 0, 0
            soa = None
        else:
            self.sets, self.ways = cache.num_sets, cache.ways
            self.latency = cache.latency
            self.mask, self.bits = cache._set_mask, cache._set_bits
            soa = cache.export_soa()
        n = self.sets * self.ways
        self.tags = soa["tags"] if soa else _full(n, -1)
        self.prio = soa["prio"] if soa else _zeros(n)
        self.seq = soa["seq"] if soa else _zeros(n)
        self.dirty = soa["dirty"] if soa else _zeros(n, _U8)
        self.pf = soa["pf"] if soa else _zeros(n, _U8)
        self.occ = soa["occ"] if soa else _zeros(self.sets)
        self.stats = _zeros(9)

    def geometry(self):
        return [self.sets, self.ways, self.latency, self.mask, self.bits]

    def buffers(self):
        return [self.tags, self.prio, self.seq, self.dirty, self.pf,
                self.occ, self.stats]

    def writeback(self, order: str, clock: int) -> None:
        cache = self.cache
        cache.import_soa(
            {"tags": self.tags, "prio": self.prio, "seq": self.seq,
             "dirty": self.dirty, "pf": self.pf},
            order=order, clock=clock)
        cache.stats = CacheStats(*(int(v) for v in self.stats))


# ---------------------------------------------------------------------------
# Support gating
# ---------------------------------------------------------------------------

def _cache_fresh(cache: SetAssocCache) -> bool:
    return (all(len(s) == 0 for s in cache.sets)
            and cache.stats == CacheStats()
            and getattr(cache.policy, "_clock", 0) == 0)


def _plain_lru_ok(cache: SetAssocCache) -> bool:
    return (cache._lru is not None and cache._policy_bind is None
            and cache._policy_miss is None)


_KERNEL_VARIANTS = frozenset({
    "baseline", "sdc_lp", "topt", "distill", "l1iso", "llc2x",
    "expert", "victim", "lp_bypass",
})


def unsupported_reason(system, trace) -> str | None:
    """Why this run cannot take the batch kernel (None = it can)."""
    if load_kernel() is None:
        return "kernel unavailable"
    # Explicit allowlist: the kernel dispatches unknown variants to the
    # baseline path, so anything it was not written for (sdc_clp,
    # sdc_lp_tagless, future variants) must be refused, not mis-run.
    if system.variant not in _KERNEL_VARIANTS:
        return f"variant {system.variant!r} not implemented by the kernel"
    if system._check_every:
        return "invariant checking armed"
    h = system.hierarchy

    for name, cache in (("l1d", h.l1d), ("l2c", h.l2c)):
        if not _plain_lru_ok(cache):
            return f"{name} policy not inlined LRU"
        if not _cache_fresh(cache):
            return f"{name} not fresh"

    llc = h.llc
    if isinstance(llc, DistillCache):
        if not _plain_lru_ok(llc.loc):
            return "distill LOC policy not inlined LRU"
        if not _cache_fresh(llc.loc):
            return "distill LOC not fresh"
        if (llc._clock or llc.woc_hits or llc.usage
                or any(llc.woc) or llc.stats != CacheStats()):
            return "distill WOC not fresh"
    elif isinstance(llc, SetAssocCache):
        if llc._policy_bind is not None or llc._policy_miss is not None:
            return "llc policy needs set binding"
        if llc._lru is None:
            pol = llc.policy
            if not (isinstance(pol, BeladyOPT) and pol.irregular_only):
                return "llc policy unsupported"
        if not _cache_fresh(llc):
            return "llc not fresh"
    else:
        return "unknown llc type"

    for name, extra in (("sdc", system.sdc), ("victim", system.victim)):
        if extra is not None:
            if not _plain_lru_ok(extra):
                return f"{name} policy not inlined LRU"
            if not _cache_fresh(extra):
                return f"{name} not fresh"

    pf1 = h.l1_prefetcher
    if pf1 is not None and (type(pf1) is not NextLinePrefetcher
                            or h._l1_pf_pc is not None):
        return "l1 prefetcher unsupported"
    pf2 = h.l2_prefetcher
    if pf2 is not None:
        if type(pf2) is not SPPPrefetcher:
            return "l2 prefetcher unsupported"
        if pf2.trackers or pf2.patterns or pf2.totals:
            return "l2 prefetcher not fresh"

    if h.dram.stats != DRAMStats() or any(r != -1 for r in h.dram.open_rows):
        return "dram not fresh"

    lp = system.lp
    if lp is not None and lp.config.tagless:
        # A tagless LPConfig can be hand-attached to any LP-bearing
        # variant; the kernel only models the tagged lookup.
        return "tagless lp unsupported by the kernel"
    if lp is not None and (lp._clock or lp.stats != LPStats()
                           or any(lp.sets)):
        return "lp not fresh"
    d = system.sdcdir
    if d is not None and (d._clock or d.stats != SDCDirStats()
                          or any(d.sets)):
        return "sdcdir not fresh"
    tlb = system.tlb
    if tlb is not None:
        if (tlb.stats != TLBStats() or tlb.l1._clock or tlb.l2._clock
                or any(tlb.l1.sets) or any(tlb.l2.sets)):
            return "tlb not fresh"

    acc = trace.accesses
    if len(acc):
        blocks = (acc["addr"] >> BLOCK_BITS).astype(np.int64)
        if int(blocks.min()) < 0:
            return "negative block address"
        deps = acc["dep"]
        if int(deps.max(initial=-1)) >= len(acc):
            return "forward dependency index"
    return None


# ---------------------------------------------------------------------------
# Aux arrays (shared trace-keyed memo with the reference path)
# ---------------------------------------------------------------------------

def _aux_arrays(system, trace, blocks):
    """(aux_mode, aux_next, aux_irr, aux_word) for the kernel."""
    from repro.core.system import distill_aux_words, topt_aux_arrays
    if system.variant == "topt":
        nxt, irr = topt_aux_arrays(trace, blocks)
        return 1, np.ascontiguousarray(nxt, dtype=_I64), \
            np.ascontiguousarray(irr, dtype=_U8), _zeros(1)
    if system.variant == "distill":
        words = distill_aux_words(trace)
        return 2, _zeros(1), _zeros(1, _U8), \
            np.ascontiguousarray(words, dtype=_I64)
    return 0, _zeros(1), _zeros(1, _U8), _zeros(1)


# ---------------------------------------------------------------------------
# The run
# ---------------------------------------------------------------------------

def try_run_batch(system, trace, record_levels=False, warmup=0,
                  flush_sdc_every=None):
    """Run the trace through the C kernel; None when unsupported."""
    if unsupported_reason(system, trace) is not None:
        return None
    lib = load_kernel()
    h = system.hierarchy
    config = system.config
    acc = trace.accesses
    n = len(acc)

    blocks = np.ascontiguousarray(acc["addr"] >> BLOCK_BITS, dtype=_I64)
    pcs = np.ascontiguousarray(acc["pc"], dtype=_I64)
    writes = np.ascontiguousarray(acc["write"], dtype=_U8)
    gaps = np.ascontiguousarray(acc["gap"], dtype=_I64)
    deps = np.ascontiguousarray(acc["dep"], dtype=_I64)
    tlb_on = system.tlb is not None
    pages = np.ascontiguousarray(acc["addr"] >> 12, dtype=_I64) \
        if tlb_on else _zeros(1)

    aux_mode, aux_next, aux_irr, aux_word = _aux_arrays(
        system, trace, blocks)
    expert = system.variant == "expert"
    if expert:
        from repro.core.system import expert_block_mask
        expert_irr = np.ascontiguousarray(
            expert_block_mask(trace, system.expert_regions), dtype=_U8)
    else:
        expert_irr = _zeros(1, _U8)

    llc = h.llc
    distill = isinstance(llc, DistillCache)
    if distill:
        llc_kind = 2
    elif llc._lru is not None:
        llc_kind = 0
    else:
        llc_kind = 1
    path = {"sdc_lp": 1, "expert": 1, "victim": 2, "lp_bypass": 3}.get(
        system.variant, 0)

    c_l1 = _CacheSoA(h.l1d)
    c_l2 = _CacheSoA(h.l2c)
    c_l3 = _CacheSoA(llc.loc if distill else llc)
    c_sd = _CacheSoA(system.sdc)
    c_vc = _CacheSoA(system.victim)

    # Distill WOC (dummy-sized when the LLC is not a distill cache).
    woc_cap = llc.woc_capacity if distill else 1
    woc_slots = woc_cap + 8
    woc_n = (c_l3.sets if distill else 1) * woc_slots
    woc_block = _zeros(woc_n)
    woc_word = _zeros(woc_n)
    woc_stamp = _zeros(woc_n)
    woc_len = _zeros(c_l3.sets if distill else 1)
    dstats = _zeros(9)

    dram = h.dram
    dram_rows = _full(dram._banks, -1)
    dram_stats = _zeros(5)

    lp = system.lp
    lp_sets = lp.num_sets if lp is not None else 1
    lp_ways = lp.ways if lp is not None else 1
    lp_n = lp_sets * lp_ways
    lp_tag = _full(lp_n, -1)
    lp_addr = _zeros(lp_n)
    lp_sacc = _zeros(lp_n)
    lp_stamp = _zeros(lp_n)
    lp_ord = _zeros(lp_n)
    lp_occ = _zeros(lp_sets)
    lp_stats = _zeros(5)

    sdcdir = system.sdcdir
    dir_sets = sdcdir.num_sets if sdcdir is not None else 1
    dir_ways = sdcdir.ways if sdcdir is not None else 1
    dir_n = dir_sets * dir_ways
    dir_block = _full(dir_n, -1)
    dir_shar = _zeros(dir_n)
    dir_dirtyc = _zeros(dir_n)
    dir_stamp = _zeros(dir_n)
    dir_occ = _zeros(dir_sets)
    dir_stats = _zeros(4)

    tlb = system.tlb
    t1_sets = tlb.l1.num_sets if tlb_on else 1
    t1_ways = tlb.l1.ways if tlb_on else 1
    t2_sets = tlb.l2.num_sets if tlb_on else 1
    t2_ways = tlb.l2.ways if tlb_on else 1
    t1_page = _full(t1_sets * t1_ways, -1)
    t1_stamp = _zeros(t1_sets * t1_ways)
    t1_ord = _zeros(t1_sets * t1_ways)
    t1_occ = _zeros(t1_sets)
    t2_page = _full(t2_sets * t2_ways, -1)
    t2_stamp = _zeros(t2_sets * t2_ways)
    t2_ord = _zeros(t2_sets * t2_ways)
    t2_occ = _zeros(t2_sets)
    tlb_stats = _zeros(4)

    l2_spp = h.l2_prefetcher is not None
    sp_deltas = _zeros(4096 * 127 if l2_spp else 1, np.int8)
    sp_counts = _zeros(4096 * 127 if l2_spp else 1, np.int16)
    sp_len = _zeros(4096 if l2_spp else 1, np.int32)
    sp_tot = _zeros(4096 if l2_spp else 1, np.int32)
    tk_page = _full(16384 if l2_spp else 1, -1)
    tk_off = _zeros(16384 if l2_spp else 1)
    tk_sig = _zeros(16384 if l2_spp else 1)

    tele_every = system._telemetry_every
    tele_capacity = (n // tele_every + 2) if tele_every else 1
    tele = _zeros(tele_capacity * 11)
    misc = _zeros(24)
    dmisc = _zeros(4, np.float64)
    levels = _zeros(n if record_levels else 1, _U8)
    completions = _zeros(n, np.float64)

    core = config.core
    icfg_vals = [0] * ICFG_LEN
    icfg_vals[0:16] = [
        n, path, llc_kind, 1 if lp is not None else 0, 1 if expert else 0,
        min(warmup, n), 1 if warmup else 0, flush_sdc_every or 0,
        tele_every, 1 if record_levels else 0, 1 if tlb_on else 0,
        1 if h.l1_prefetcher is not None else 0, 1 if l2_spp else 0,
        1 if config.sdc.prefetcher is not None else 0,
        aux_mode, config.sdc_miss_dir_latency,
    ]
    icfg_vals[16:21] = c_l1.geometry()
    icfg_vals[21:26] = c_l2.geometry()
    icfg_vals[26:31] = c_l3.geometry()
    icfg_vals[31:36] = c_sd.geometry()
    icfg_vals[36:41] = c_vc.geometry()
    icfg_vals[41] = woc_cap
    icfg_vals[42] = woc_slots
    icfg_vals[43:47] = [
        dir_sets, dir_ways,
        sdcdir._set_mask if sdcdir is not None else 0,
        sdcdir.latency if sdcdir is not None else 0,
    ]
    icfg_vals[47:53] = [
        lp_sets, lp_ways,
        lp._set_bits if lp is not None else 0,
        lp._set_mask if lp is not None else 0,
        lp.tau if lp is not None else 0,
        lp._s_acc_max if lp is not None else 0,
    ]
    icfg_vals[53:58] = [dram._banks, dram._row_bits, dram._lat_hit,
                        dram._lat_miss, dram._lat_conflict]
    icfg_vals[58:61] = [t1_sets, t1_ways,
                        tlb.l1._set_mask if tlb_on else 0]
    icfg_vals[61:64] = [t2_sets, t2_ways,
                        tlb.l2._set_mask if tlb_on else 0]
    icfg_vals[64] = tlb.l2.config.latency if tlb_on else 0
    icfg_vals[65] = tlb.walk_latency if tlb_on else 0
    icfg_vals[66] = core.width
    icfg_vals[67] = max(8, core.rob_entries // 4)
    icfg_vals[68] = config.l1d.mshr_entries
    icfg_vals[69] = config.sdc.mshr_entries
    icfg_vals[70] = config.l1d.latency
    icfg_vals[71] = tele_capacity
    icfg_vals[72] = llc.latency

    usage = _zeros(c_l3.sets * c_l3.ways, _U8)
    buffers = (
        c_l1.buffers() + c_l2.buffers() + c_l3.buffers()
        + c_sd.buffers() + c_vc.buffers()
        + [usage]
        + [woc_block, woc_word, woc_stamp, woc_len, dstats,
           dram_rows, dram_stats,
           lp_tag, lp_addr, lp_sacc, lp_stamp, lp_ord, lp_occ, lp_stats,
           dir_block, dir_shar, dir_dirtyc, dir_stamp, dir_occ, dir_stats,
           t1_page, t1_stamp, t1_ord, t1_occ,
           t2_page, t2_stamp, t2_ord, t2_occ, tlb_stats,
           sp_deltas, sp_counts, sp_len, sp_tot,
           tk_page, tk_off, tk_sig,
           tele, misc, dmisc,
           blocks, pcs, writes, gaps, deps, pages,
           aux_next, aux_irr, aux_word, expert_irr,
           levels, completions]
    )
    assert len(buffers) == NBUF

    icfg_c = (ctypes.c_int64 * ICFG_LEN)(*[int(v) for v in icfg_vals])
    bufs_c = (ctypes.c_void_p * NBUF)(
        *[b.ctypes.data_as(ctypes.c_void_p).value for b in buffers])
    rc = lib.repro_batch_run(icfg_c, bufs_c)
    if rc != 0:
        return None          # caller reruns through the reference path

    # ---- write state and stats back into the Python objects ----------
    c_l1.writeback("prio", int(misc[3]))
    c_l2.writeback("prio", int(misc[4]))
    if distill:
        c_l3.cache = llc.loc
        c_l3.writeback("prio", int(misc[5]))
        llc.stats = CacheStats(*(int(v) for v in dstats))
        llc._clock = int(misc[7])
        llc.woc_hits = int(misc[15])
        for si in range(llc.num_sets):
            base = si * woc_slots
            llc.woc[si] = {
                (int(woc_block[base + k]), int(woc_word[base + k])):
                    int(woc_stamp[base + k])
                for k in range(int(woc_len[si]))}
        llc.usage = {}
        loc = llc.loc
        for si in range(loc.num_sets):
            for w in range(loc.ways):
                j = si * loc.ways + w
                if c_l3.tags[j] >= 0 and usage[j]:
                    llc.usage[loc._join(si, int(c_l3.tags[j]))] = \
                        int(usage[j])
    else:
        c_l3.writeback("prio" if llc_kind == 0 else "seq", int(misc[5]))
        if llc_kind == 1:
            llc.policy._clock = int(misc[6])
    if system.sdc is not None:
        c_sd.writeback("prio", int(misc[8]))
    if system.victim is not None:
        c_vc.writeback("prio", int(misc[9]))

    dram.stats = DRAMStats(*(int(v) for v in dram_stats))
    dram.open_rows = [int(v) for v in dram_rows]

    if lp is not None:
        lp.stats = LPStats(*(int(v) for v in lp_stats))
        lp._clock = int(misc[10])
        for si in range(lp_sets):
            base = si * lp_ways
            slots = sorted(
                (w for w in range(lp_ways) if lp_tag[base + w] >= 0),
                key=lambda w: lp_ord[base + w])
            lp.sets[si] = {
                int(lp_tag[base + w]): LPEntry(
                    int(lp_addr[base + w]), int(lp_sacc[base + w]),
                    int(lp_stamp[base + w]))
                for w in slots}
    if sdcdir is not None:
        st = sdcdir.stats
        st.lookups, st.hits, st.inserts, st.evictions = (
            int(v) for v in dir_stats)
        sdcdir._clock = int(misc[12])
        for si in range(dir_sets):
            base = si * dir_ways
            slots = sorted(
                (w for w in range(dir_ways) if dir_block[base + w] >= 0),
                key=lambda w: dir_stamp[base + w])
            sdcdir.sets[si] = {
                int(dir_block[base + w]): [
                    int(dir_shar[base + w]), int(dir_dirtyc[base + w]),
                    int(dir_stamp[base + w])]
                for w in slots}
    if tlb_on:
        tlb.stats = TLBStats(*(int(v) for v in tlb_stats))
        for level, pg, stmp, order, sets, ways, clock in (
                (tlb.l1, t1_page, t1_stamp, t1_ord, t1_sets, t1_ways,
                 int(misc[13])),
                (tlb.l2, t2_page, t2_stamp, t2_ord, t2_sets, t2_ways,
                 int(misc[14]))):
            level._clock = clock
            for si in range(sets):
                base = si * ways
                slots = sorted(
                    (w for w in range(ways) if pg[base + w] >= 0),
                    key=lambda w: order[base + w])
                level.sets[si] = {int(pg[base + w]): int(stmp[base + w])
                                  for w in slots}
    if l2_spp:
        pf2 = h.l2_prefetcher
        pf2.trackers = {int(tk_page[j]): [int(tk_off[j]), int(tk_sig[j])]
                        for j in range(len(tk_page))
                        if tk_page[j] != -1}
        pf2.patterns, pf2.totals = {}, {}
        for sig in range(4096):
            m = int(sp_len[sig])
            if m or sp_tot[sig]:
                base = sig * 127
                pf2.patterns[sig] = {
                    int(sp_deltas[base + k]): int(sp_counts[base + k])
                    for k in range(m)}
                pf2.totals[sig] = int(sp_tot[sig])

    # ---- assemble the result (mirrors the reference run()'s tail) ----
    from repro.core.system import SystemStats
    timeline = None
    if tele_every:
        probe = WindowProbe(tele_every, lambda: None)
        nrows = int(misc[1])
        for r in range(nrows):
            snap = _Snapshot(*(int(v) for v in tele[r * 11:(r + 1) * 11]))
            probe._snap_fn = (lambda s=snap: s)
            probe.sample()
        timeline = probe.timeline()
    return SystemStats(
        variant=system.variant,
        instructions=int(misc[0]),
        cycles=max(float(dmisc[0]), float(dmisc[1])),
        l1d=h.l1d.stats,
        l2c=h.l2c.stats,
        llc=h.llc.stats,
        sdc=system.sdc.stats if system.sdc else None,
        dram=dram.stats,
        lp=lp.stats if lp else None,
        levels=levels if record_levels else None,
        tlb=tlb.stats if tlb else None,
        timeline=timeline)
