"""Batched structure-of-arrays simulation backend.

The public seam is small on purpose:

* :func:`resolve_backend` — name resolution (``arg`` > ``REPRO_BACKEND``
  env var > ``"ref"``);
* :func:`try_run_batch` — run a trace through the compiled SoA kernel,
  or return ``None`` to signal "fall back to the reference loop";
* :func:`kernel_available` — can this host compile/load the kernel?

See docs/PERFORMANCE.md ("Backends") for the design and A/B recipe.
"""

from __future__ import annotations

import os

from repro.core.batch.backend import try_run_batch, unsupported_reason
from repro.core.batch.build import (compile_kernel, kernel_available,
                                    load_kernel, source_digest)

BACKENDS = ("ref", "batch")


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a backend name from the argument or ``REPRO_BACKEND``."""
    name = backend or os.environ.get("REPRO_BACKEND") or "ref"
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; "
                         f"choose from {BACKENDS}")
    return name


__all__ = ["BACKENDS", "resolve_backend", "try_run_batch",
           "unsupported_reason", "kernel_available", "compile_kernel",
           "load_kernel", "source_digest"]
