/* Batched structure-of-arrays simulation kernel.
 *
 * A C transliteration of the single-core reference state machine
 * (repro.core.system / repro.mem.*) operating on flat arrays owned by
 * the Python driver (repro.core.batch.backend).  Bit-identity with the
 * reference is a hard contract: every counter update, recency bump,
 * victim pick and float operation mirrors the Python source exactly.
 * Compile with -ffp-contract=off so the interval-timer float math
 * cannot be fused into FMA (CPython never fuses).
 *
 * Equivalences relied on (each verified against the Python source):
 *   - dict-order LRU == min-prio victim (stamps are unique);
 *   - Belady victim (first maximal in dict order) == max prio with
 *     min install-sequence tie-break (non-LRU sets never reorder);
 *   - min(d, key=d.get) == min-stamp scan (stamps unique);
 *   - heapq pop order is determined by the value multiset alone;
 *   - C IEEE-754 doubles replicate CPython float arithmetic.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define ABI_VERSION 1

/* CacheStats slots (field order of repro.mem.cache.CacheStats). */
enum { ACC = 0, HIT, MISS, PFF, PFH, WB, EV, FILL, INV };
/* DRAMStats slots. */
enum { DREADS = 0, DWRITES, DROWH, DROWM, DROWC };
/* Level codes (repro.mem.hierarchy). */
enum { L1D_LV = 0, L2C_LV, LLC_LV, DRAM_LV, SDC_LV };

static const int64_t NEVER = (int64_t)1 << 62;

typedef struct {
    int64_t sets, ways, latency, mask, bits;
    int64_t *tags, *prio, *seq, *occ, *stats;
    uint8_t *dirty, *pf;
    int64_t clock, seqc;
} Cache;

/* ---- global kernel state (single-threaded, one run per call) ---- */
static Cache L1, L2, L3, SD, VC;
static const int64_t *g_icfg;
static void **g_bufs;

static int64_t g_path, g_llc_kind, g_has_lp, g_use_expert;
static int64_t g_l1_next_line, g_l2_spp, g_sdc_pf, g_aux_mode;
static int64_t g_sdc_miss_dir_lat, g_llc_lat, g_dir_lat;

/* distill */
static uint8_t *g_usage;
static int64_t *g_wb, *g_ww, *g_ws, *g_wlen, *g_dstats;
static int64_t g_woc_cap, g_woc_slots, g_dclock, g_woc_hits;
static int64_t g_belady_clock;

/* dram */
static int64_t *g_rows, *g_dram;
static int64_t g_banks, g_row_bits, g_lat_hit, g_lat_miss, g_lat_conf;

/* lp */
static int64_t *g_lp_tag, *g_lp_addr, *g_lp_sacc, *g_lp_stamp, *g_lp_ord;
static int64_t *g_lp_occ, *g_lp_stats;
static int64_t g_lp_sets, g_lp_ways, g_lp_set_bits, g_lp_set_mask;
static int64_t g_lp_tau, g_lp_smax, g_lp_clock, g_lp_ordc;

/* sdcdir */
static int64_t *g_db, *g_dsh, *g_ddc, *g_dst, *g_docc, *g_dirstats;
static int64_t g_dir_sets, g_dir_ways, g_dir_mask, g_dir_clock;

/* tlb */
typedef struct {
    int64_t sets, ways, mask, clock, ordc;
    int64_t *page, *stamp, *ord, *occ;
} TLBLevel;
static TLBLevel T1, T2;
static int64_t *g_tlb_stats;
static int64_t g_tlb_l2_lat, g_tlb_walk_lat;

/* spp */
static int8_t *g_sp_d;
static int16_t *g_sp_c;
static int32_t *g_sp_len, *g_sp_tot;
static int64_t *g_tk_page, *g_tk_off, *g_tk_sig;
static int64_t g_tk_count;
#define TK_CAP 16384
#define SP_SLOTS 127

/* aux / trace columns */
static const int64_t *g_aux_next, *g_aux_word;
static const uint8_t *g_aux_irr, *g_expert_irr;

/* ---------------------------------------------------------------- */
/* Set-associative cache primitives                                  */
/* ---------------------------------------------------------------- */

static inline int64_t c_set(Cache *c, int64_t b) {
    return c->mask >= 0 ? (b & c->mask) : (b % c->sets);
}

static inline int64_t c_tagof(Cache *c, int64_t b) {
    return c->mask >= 0 ? (b >> c->bits) : (b / c->sets);
}

static inline int64_t c_join(Cache *c, int64_t s, int64_t t) {
    return c->mask >= 0 ? ((t << c->bits) | s) : (t * c->sets + s);
}

static inline int64_t c_find(Cache *c, int64_t s, int64_t t) {
    int64_t base = s * c->ways, w;
    for (w = 0; w < c->ways; w++)
        if (c->tags[base + w] == t)
            return base + w;
    return -1;
}

static inline int c_contains(Cache *c, int64_t b) {
    return c_find(c, c_set(c, b), c_tagof(c, b)) >= 0;
}

/* Belady prio (BeladyOPT(irregular_only=True)._prio). */
static inline int64_t bl_prio(int has_aux, int64_t nu, int irr) {
    if (!has_aux)
        return NEVER;
    if (!irr) {
        g_belady_clock++;
        return ((int64_t)1 << 40) + g_belady_clock;
    }
    return nu;
}

/* Demand lookup (SetAssocCache.access).  kind 0 = LRU, 1 = Belady.
 * Returns slot index on hit, -1 on miss. */
static int64_t c_access_k(Cache *c, int64_t b, int write, int kind,
                          int has_aux, int64_t nu, int irr) {
    int64_t s = c_set(c, b), t = c_tagof(c, b);
    int64_t i = c_find(c, s, t);
    c->stats[ACC]++;
    if (i >= 0) {
        c->stats[HIT]++;
        if (c->pf[i]) {
            c->stats[PFH]++;
            c->pf[i] = 0;
        }
        if (write)
            c->dirty[i] = 1;
        if (kind == 0)
            c->prio[i] = ++c->clock;
        else
            c->prio[i] = bl_prio(has_aux, nu, irr);
        return i;
    }
    c->stats[MISS]++;
    return -1;
}

static inline int64_t c_access(Cache *c, int64_t b, int write) {
    return c_access_k(c, b, write, 0, 0, 0, 0);
}

/* Install (SetAssocCache.fill).  Returns 0 = re-fill, 1 = install into
 * free slot, 2 = install with eviction (evb/evd set).  slot_out gets
 * the line's slot in every case. */
static int c_fill_k(Cache *c, int64_t b, int dirty, int pf, int kind,
                    int has_aux, int64_t nu, int irr,
                    int64_t *evb, int *evd, int64_t *slot_out) {
    int64_t s = c_set(c, b), t = c_tagof(c, b);
    int64_t base = s * c->ways;
    int64_t i = c_find(c, s, t), w, slot = -1;
    if (i >= 0) {
        if (dirty)
            c->dirty[i] = 1;
        if (!pf)
            c->pf[i] = 0;
        if (kind == 0)
            c->prio[i] = ++c->clock;
        else
            c->prio[i] = bl_prio(has_aux, nu, irr);
        if (slot_out)
            *slot_out = i;
        return 0;
    }
    int evicted = 0;
    if (c->occ[s] >= c->ways) {
        if (kind == 0) {
            /* LRU: min prio (== first key of the move-to-end dict). */
            int64_t bp = 0, best = -1;
            for (w = 0; w < c->ways; w++) {
                int64_t j = base + w;
                if (c->tags[j] < 0)
                    continue;
                if (best < 0 || c->prio[j] < bp) {
                    bp = c->prio[j];
                    best = j;
                }
            }
            slot = best;
        } else {
            /* Belady: max prio, first-in-dict-order (min seq) ties. */
            int64_t bp = -1, bs = 0, best = -1;
            for (w = 0; w < c->ways; w++) {
                int64_t j = base + w;
                if (c->tags[j] < 0)
                    continue;
                if (best < 0 || c->prio[j] > bp ||
                        (c->prio[j] == bp && c->seq[j] < bs)) {
                    bp = c->prio[j];
                    bs = c->seq[j];
                    best = j;
                }
            }
            slot = best;
        }
        c->stats[EV]++;
        if (c->dirty[slot])
            c->stats[WB]++;
        *evb = c_join(c, s, c->tags[slot]);
        *evd = c->dirty[slot] ? 1 : 0;
        evicted = 2;
    } else {
        for (w = 0; w < c->ways; w++) {
            int64_t j = base + w;
            if (c->tags[j] < 0) {
                slot = j;
                break;
            }
        }
        c->occ[s]++;
        evicted = 1;
    }
    c->tags[slot] = t;
    c->dirty[slot] = dirty ? 1 : 0;
    c->pf[slot] = pf ? 1 : 0;
    if (kind == 0)
        c->prio[slot] = ++c->clock;
    else
        c->prio[slot] = bl_prio(has_aux, nu, irr);
    c->seq[slot] = ++c->seqc;
    c->stats[FILL]++;
    if (pf)
        c->stats[PFF]++;
    if (slot_out)
        *slot_out = slot;
    return evicted;
}

static inline int c_fill(Cache *c, int64_t b, int dirty, int pf,
                         int64_t *evb, int *evd) {
    return c_fill_k(c, b, dirty, pf, 0, 0, 0, 0, evb, evd, NULL);
}

/* invalidate: returns (was_present, was_dirty) packed as 2*p + d. */
static int c_invalidate(Cache *c, int64_t b) {
    int64_t s = c_set(c, b), t = c_tagof(c, b);
    int64_t i = c_find(c, s, t);
    if (i < 0)
        return 0;
    int d = c->dirty[i] ? 1 : 0;
    c->tags[i] = -1;
    c->dirty[i] = 0;
    c->pf[i] = 0;
    c->occ[s]--;
    c->stats[INV]++;
    return 2 + d;
}

static int c_clear_dirty(Cache *c, int64_t b) {
    int64_t i = c_find(c, c_set(c, b), c_tagof(c, b));
    if (i < 0 || !c->dirty[i])
        return 0;
    c->dirty[i] = 0;
    return 1;
}

static int c_mark_dirty(Cache *c, int64_t b) {
    int64_t i = c_find(c, c_set(c, b), c_tagof(c, b));
    if (i < 0)
        return 0;
    c->dirty[i] = 1;
    return 1;
}

static void c_flush(Cache *c) {
    int64_t s;
    for (s = 0; s < c->sets; s++) {
        c->stats[INV] += c->occ[s];
        c->occ[s] = 0;
    }
    for (s = 0; s < c->sets * c->ways; s++) {
        c->tags[s] = -1;
        c->dirty[s] = 0;
        c->pf[s] = 0;
    }
}

/* ---------------------------------------------------------------- */
/* DRAM (repro.mem.dram.DRAMModel)                                   */
/* ---------------------------------------------------------------- */

static int64_t dram_access(int64_t block) {
    int64_t row = (block << 6) >> g_row_bits;
    int64_t bank = row % g_banks;
    int64_t cur = g_rows[bank];
    if (cur == row) {
        g_dram[DROWH]++;
        return g_lat_hit;
    }
    g_rows[bank] = row;
    if (cur == -1) {
        g_dram[DROWM]++;
        return g_lat_miss;
    }
    g_dram[DROWC]++;
    return g_lat_conf;
}

static int64_t dram_read(int64_t block) {
    g_dram[DREADS]++;
    return dram_access(block);
}

static int64_t dram_write(int64_t block) {
    g_dram[DWRITES]++;
    return dram_access(block);
}

/* ---------------------------------------------------------------- */
/* Distill cache (repro.mem.distill.DistillCache); L3 acts as LOC.   */
/* ---------------------------------------------------------------- */

static void dist_distill(int64_t block, uint8_t bitmap) {
    if (!bitmap)
        return;
    int64_t si = block % L3.sets;
    int64_t base = si * g_woc_slots;
    int64_t word, k;
    for (word = 0; word < 8; word++) {
        if (!(bitmap & ((uint8_t)1 << word)))
            continue;
        g_dclock++;
        int64_t found = -1;
        for (k = 0; k < g_wlen[si]; k++) {
            if (g_wb[base + k] == block && g_ww[base + k] == word) {
                found = k;
                break;
            }
        }
        if (found >= 0) {
            g_ws[base + found] = g_dclock;
        } else {
            g_wb[base + g_wlen[si]] = block;
            g_ww[base + g_wlen[si]] = word;
            g_ws[base + g_wlen[si]] = g_dclock;
            g_wlen[si]++;
        }
    }
    while (g_wlen[si] > g_woc_cap) {
        int64_t best = 0, bs = g_ws[base];
        for (k = 1; k < g_wlen[si]; k++) {
            if (g_ws[base + k] < bs) {
                bs = g_ws[base + k];
                best = k;
            }
        }
        /* order-preserving compaction (dict deletion keeps order) */
        for (k = best; k < g_wlen[si] - 1; k++) {
            g_wb[base + k] = g_wb[base + k + 1];
            g_ww[base + k] = g_ww[base + k + 1];
            g_ws[base + k] = g_ws[base + k + 1];
        }
        g_wlen[si]--;
    }
}

static int dist_access(int64_t b, int write, int64_t word) {
    g_dstats[ACC]++;
    int64_t slot = c_access(&L3, b, write);
    if (slot >= 0) {
        g_dstats[HIT]++;
        g_usage[slot] |= (uint8_t)1 << word;
        return 1;
    }
    int64_t si = b % L3.sets, base = si * g_woc_slots, k;
    for (k = 0; k < g_wlen[si]; k++) {
        if (g_wb[base + k] == b && g_ww[base + k] == word) {
            g_dclock++;
            g_ws[base + k] = g_dclock;
            g_dstats[HIT]++;
            g_woc_hits++;
            return 1;
        }
    }
    g_dstats[MISS]++;
    return 0;
}

static int dist_fill(int64_t b, int dirty, int pf, int64_t word,
                     int64_t *evb, int *evd) {
    int64_t slot;
    int r = c_fill_k(&L3, b, dirty, pf, 0, 0, 0, 0, evb, evd, &slot);
    if (r == 0) {
        g_usage[slot] |= (uint8_t)1 << word;
        return 0;
    }
    if (r == 1) {
        g_usage[slot] = (uint8_t)1 << word;
        return 0;
    }
    uint8_t vbits = g_usage[slot];
    g_usage[slot] = (uint8_t)1 << word;
    dist_distill(*evb, vbits);
    g_dstats[EV]++;
    if (*evd)
        g_dstats[WB]++;
    return 1;
}

/* ---------------------------------------------------------------- */
/* LLC dispatch (kind 0 = LRU, 1 = Belady/T-OPT, 2 = distill)        */
/* ---------------------------------------------------------------- */

static inline int64_t aux_word_at(int has_aux, int64_t i) {
    return has_aux ? (g_aux_word[i] % 8) : 0;
}

static int llc_access(int64_t b, int write, int has_aux, int64_t i) {
    if (g_llc_kind == 2)
        return dist_access(b, write, aux_word_at(has_aux, i));
    if (g_llc_kind == 1)
        return c_access_k(&L3, b, write, 1, has_aux,
                          has_aux ? g_aux_next[i] : 0,
                          has_aux ? g_aux_irr[i] : 0) >= 0;
    return c_access(&L3, b, write) >= 0;
}

static int llc_fill(int64_t b, int dirty, int pf, int has_aux, int64_t i,
                    int64_t *evb, int *evd) {
    if (g_llc_kind == 2)
        return dist_fill(b, dirty, pf, aux_word_at(has_aux, i), evb, evd)
            ? 2 : 0;
    if (g_llc_kind == 1)
        return c_fill_k(&L3, b, dirty, pf, 1, has_aux,
                        has_aux ? g_aux_next[i] : 0,
                        has_aux ? g_aux_irr[i] : 0, evb, evd, NULL);
    return c_fill(&L3, b, dirty, pf, evb, evd);
}

static int llc_mark_dirty(int64_t b) {
    return c_mark_dirty(&L3, b);     /* DistillCache delegates to LOC */
}

static int llc_contains(int64_t b) {
    return c_contains(&L3, b);       /* DistillCache.contains == LOC */
}

/* ---------------------------------------------------------------- */
/* Hierarchy plumbing (repro.mem.hierarchy.MemoryHierarchy)          */
/* ---------------------------------------------------------------- */

static void wb_to_llc(int64_t b) {
    int64_t evb;
    int evd;
    if (llc_mark_dirty(b))
        return;
    if (llc_fill(b, 1, 0, 0, 0, &evb, &evd) == 2 && evd)
        dram_write(evb);
}

static void wb_to_l2(int64_t b) {
    int64_t evb;
    int evd;
    if (c_mark_dirty(&L2, b))
        return;
    if (c_fill(&L2, b, 1, 0, &evb, &evd) == 2 && evd)
        wb_to_llc(evb);
}

static void fill_l1(int64_t b, int dirty, int pf) {
    int64_t evb;
    int evd;
    if (c_fill(&L1, b, dirty, pf, &evb, &evd) == 2 && evd)
        wb_to_l2(evb);
}

static void fill_l2(int64_t b, int pf) {
    int64_t evb;
    int evd;
    if (c_fill(&L2, b, 0, pf, &evb, &evd) == 2 && evd)
        wb_to_llc(evb);
}

static void fill_llc(int64_t b, int has_aux, int64_t i, int pf) {
    int64_t evb;
    int evd;
    if (llc_fill(b, 0, pf, has_aux, i, &evb, &evd) == 2 && evd)
        dram_write(evb);
}

/* ---------------------------------------------------------------- */
/* SPP prefetcher (repro.mem.prefetch.SPPPrefetcher)                 */
/* ---------------------------------------------------------------- */

static inline int64_t tk_hash(int64_t page) {
    return (int64_t)(((uint64_t)page * 0x9E3779B97F4A7C15ULL) >> 50);
}

static int64_t tk_find(int64_t page) {
    int64_t h = tk_hash(page);
    while (g_tk_page[h] != -1) {
        if (g_tk_page[h] == page)
            return h;
        h = (h + 1) & (TK_CAP - 1);
    }
    return -1;
}

static int spp_on_access(int64_t block, int64_t *cand) {
    int64_t page = block >> 6;
    int64_t offset = block & 63;
    int64_t ti = tk_find(page);
    int npf = 0;
    if (ti >= 0) {
        int64_t sig = g_tk_sig[ti];
        int64_t delta = offset - g_tk_off[ti];
        if (delta != 0) {
            /* update pattern table */
            int64_t base = sig * SP_SLOTS, k, found = -1;
            int32_t len = g_sp_len[sig];
            for (k = 0; k < len; k++) {
                if (g_sp_d[base + k] == (int8_t)delta) {
                    found = k;
                    break;
                }
            }
            if (found >= 0) {
                int c = g_sp_c[base + found] + 1;
                g_sp_c[base + found] = c < 16 ? (int16_t)c : 16;
            } else {
                g_sp_d[base + len] = (int8_t)delta;
                g_sp_c[base + len] = 1;
                g_sp_len[sig] = ++len;
            }
            int32_t total = g_sp_tot[sig] + 1;
            if (total > 64) {
                /* halve in insertion order, drop zeros, re-sum */
                int32_t out = 0;
                total = 0;
                for (k = 0; k < len; k++) {
                    int16_t c = (int16_t)(g_sp_c[base + k] >> 1);
                    if (c > 0) {
                        g_sp_d[base + out] = g_sp_d[base + k];
                        g_sp_c[base + out] = c;
                        total += c;
                        out++;
                    }
                }
                g_sp_len[sig] = out;
            }
            g_sp_tot[sig] = total;
            sig = ((sig << 3) ^ (delta & 0x7F)) & 0xFFF;
            /* walk the signature path while confident */
            double conf = 1.0;
            int64_t cur_off = offset, cur_sig = sig;
            int depth;
            for (depth = 0; depth < 4; depth++) {
                int32_t len2 = g_sp_len[cur_sig];
                if (!len2)
                    break;
                int32_t tot = g_sp_tot[cur_sig];
                if (tot <= 0)
                    break;
                int64_t b2 = cur_sig * SP_SLOTS;
                int64_t best_d = 0;
                int32_t best_c = -1;
                for (k = 0; k < len2; k++) {
                    if (g_sp_c[b2 + k] > best_c) {
                        best_c = g_sp_c[b2 + k];
                        best_d = g_sp_d[b2 + k];
                    }
                }
                conf *= (double)best_c / (double)tot;
                if (conf < 0.25)
                    break;
                cur_off += best_d;
                if (cur_off < 0 || cur_off >= 64)
                    break;
                cand[npf++] = (page << 6) + cur_off;
                cur_sig = ((cur_sig << 3) ^ (best_d & 0x7F)) & 0xFFF;
            }
        }
        g_tk_off[ti] = offset;
        g_tk_sig[ti] = sig;
    } else {
        if (g_tk_count > 4096) {
            memset(g_tk_page, -1, TK_CAP * sizeof(int64_t));
            g_tk_count = 0;
        }
        int64_t h = tk_hash(page);
        while (g_tk_page[h] != -1)
            h = (h + 1) & (TK_CAP - 1);
        g_tk_page[h] = page;
        g_tk_off[h] = offset;
        g_tk_sig[h] = 0;
        g_tk_count++;
    }
    return npf;
}

static void l2_prefetch_step(int64_t block, int filter_sdc) {
    int64_t cand[4];
    int n = spp_on_access(block, cand), k;
    for (k = 0; k < n; k++) {
        int64_t pf = cand[k];
        if (c_contains(&L2, pf))
            continue;
        if (filter_sdc && c_contains(&SD, pf))
            continue;
        fill_l2(pf, 1);
    }
}

/* ---------------------------------------------------------------- */
/* Large Predictor (repro.core.lp.LargePredictor)                    */
/* ---------------------------------------------------------------- */

static int lp_predict(int64_t pc, int64_t block) {
    g_lp_stats[0]++;                                    /* lookups */
    int64_t idx = pc >> 2;
    int64_t si = idx & g_lp_set_mask;
    int64_t tag = idx >> g_lp_set_bits;
    int64_t base = si * g_lp_ways, w, slot = -1;
    g_lp_clock++;
    for (w = 0; w < g_lp_ways; w++) {
        if (g_lp_tag[base + w] == tag) {
            slot = base + w;
            break;
        }
    }
    int irregular;
    if (slot >= 0) {
        g_lp_stats[1]++;                                /* table_hits */
        int64_t s_acc = g_lp_sacc[slot];
        irregular = s_acc >= g_lp_tau;
        int64_t stride = block - g_lp_addr[slot];
        if (stride < 0)
            stride = -stride;
        s_acc = (s_acc + stride) >> 1;
        g_lp_sacc[slot] = s_acc <= g_lp_smax ? s_acc : g_lp_smax;
        g_lp_addr[slot] = block;
        g_lp_stamp[slot] = g_lp_clock;
    } else {
        g_lp_stats[2]++;                                /* table_misses */
        irregular = 0;
        if (g_lp_occ[si] >= g_lp_ways) {
            int64_t best = base, bs = g_lp_stamp[base];
            for (w = 1; w < g_lp_ways; w++) {
                if (g_lp_tag[base + w] >= 0 &&
                        g_lp_stamp[base + w] < bs) {
                    bs = g_lp_stamp[base + w];
                    best = base + w;
                }
            }
            slot = best;
        } else {
            for (w = 0; w < g_lp_ways; w++) {
                if (g_lp_tag[base + w] < 0) {
                    slot = base + w;
                    break;
                }
            }
            g_lp_occ[si]++;
        }
        g_lp_tag[slot] = tag;
        g_lp_addr[slot] = block;
        g_lp_sacc[slot] = 0;
        g_lp_stamp[slot] = g_lp_clock;
        g_lp_ord[slot] = ++g_lp_ordc;
    }
    if (irregular)
        g_lp_stats[3]++;                                /* irregular */
    else
        g_lp_stats[4]++;                                /* regular */
    return irregular;
}

/* ---------------------------------------------------------------- */
/* SDC directory (repro.core.sdcdir.SDCDirectory), core id 0 only.   */
/* ---------------------------------------------------------------- */

static inline int64_t dir_setof(int64_t b) {
    return g_dir_mask >= 0 ? (b & g_dir_mask) : (b % g_dir_sets);
}

static int64_t dir_find(int64_t b) {
    int64_t base = dir_setof(b) * g_dir_ways, w;
    for (w = 0; w < g_dir_ways; w++)
        if (g_db[base + w] == b)
            return base + w;
    return -1;
}

static void dir_lookup_notouch(int64_t b) {
    g_dirstats[0]++;                                    /* lookups */
    if (dir_find(b) >= 0)
        g_dirstats[1]++;                                /* hits */
}

/* Returns 1 and fills dis* when a victim entry was displaced. */
static int dir_insert(int64_t b, int dirty, int64_t *disb,
                      int64_t *dissh, int64_t *disdc) {
    int64_t si = dir_setof(b), base = si * g_dir_ways, w;
    g_dir_clock++;
    int64_t slot = dir_find(b);
    if (slot >= 0) {
        g_dsh[slot] |= 1;
        if (dirty)
            g_ddc[slot] = 0;
        g_dst[slot] = g_dir_clock;
        return 0;
    }
    g_dirstats[2]++;                                    /* inserts */
    int displaced = 0;
    if (g_docc[si] >= g_dir_ways) {
        /* dict order == stamp order; victim = min stamp */
        int64_t best = -1, bs = 0;
        for (w = 0; w < g_dir_ways; w++) {
            int64_t j = base + w;
            if (g_db[j] == -1)
                continue;
            if (best < 0 || g_dst[j] < bs) {
                bs = g_dst[j];
                best = j;
            }
        }
        g_dirstats[3]++;                                /* evictions */
        *disb = g_db[best];
        *dissh = g_dsh[best];
        *disdc = g_ddc[best];
        displaced = 1;
        slot = best;
    } else {
        for (w = 0; w < g_dir_ways; w++) {
            if (g_db[base + w] == -1) {
                slot = base + w;
                break;
            }
        }
        g_docc[si]++;
    }
    g_db[slot] = b;
    g_dsh[slot] = 1;
    g_ddc[slot] = dirty ? 0 : -1;
    g_dst[slot] = g_dir_clock;
    return displaced;
}

/* Returns 2*was_present + was_dirty_owner. */
static int dir_remove_sharer(int64_t b) {
    int64_t slot = dir_find(b);
    if (slot < 0)
        return 0;
    int was_owner = g_ddc[slot] == 0;
    g_dsh[slot] &= ~(int64_t)1;
    if (was_owner)
        g_ddc[slot] = -1;
    if (g_dsh[slot] == 0) {
        g_db[slot] = -1;
        g_docc[dir_setof(b)]--;
    }
    return 2 + (was_owner ? 1 : 0);
}

static void dir_mark_dirty(int64_t b) {
    int64_t slot = dir_find(b);
    if (slot >= 0)
        g_ddc[slot] = 0;
}

static int dir_clear_dirty(int64_t b) {
    int64_t slot = dir_find(b);
    if (slot < 0 || g_ddc[slot] < 0)
        return 0;
    g_ddc[slot] = -1;
    return 1;
}

/* ---------------------------------------------------------------- */
/* TLB (repro.mem.tlb)                                               */
/* ---------------------------------------------------------------- */

static int64_t tlb_find(TLBLevel *L, int64_t page) {
    int64_t si = L->mask >= 0 ? (page & L->mask) : (page % L->sets);
    int64_t base = si * L->ways, w;
    for (w = 0; w < L->ways; w++)
        if (L->page[base + w] == page)
            return base + w;
    return -1;
}

static int tlb_level_access(TLBLevel *L, int64_t page) {
    L->clock++;
    int64_t slot = tlb_find(L, page);
    if (slot >= 0) {
        L->stamp[slot] = L->clock;
        return 1;
    }
    return 0;
}

static void tlb_level_fill(TLBLevel *L, int64_t page) {
    L->clock++;
    int64_t slot = tlb_find(L, page);
    if (slot >= 0) {
        L->stamp[slot] = L->clock;    /* in-place: dict slot kept */
        return;
    }
    int64_t si = L->mask >= 0 ? (page & L->mask) : (page % L->sets);
    int64_t base = si * L->ways, w;
    if (L->occ[si] >= L->ways) {
        int64_t best = -1, bs = 0;
        for (w = 0; w < L->ways; w++) {
            int64_t j = base + w;
            if (L->page[j] == -1)
                continue;
            if (best < 0 || L->stamp[j] < bs) {
                bs = L->stamp[j];
                best = j;
            }
        }
        slot = best;
    } else {
        for (w = 0; w < L->ways; w++) {
            if (L->page[base + w] == -1) {
                slot = base + w;
                break;
            }
        }
        L->occ[si]++;
    }
    L->page[slot] = page;
    L->stamp[slot] = L->clock;
    L->ord[slot] = ++L->ordc;
}

static int64_t tlb_translate(int64_t page) {
    g_tlb_stats[0]++;                                   /* accesses */
    T1.clock++;
    int64_t slot = tlb_find(&T1, page);
    if (slot >= 0) {
        T1.stamp[slot] = T1.clock;
        g_tlb_stats[1]++;                               /* l1_hits */
        return 0;
    }
    if (tlb_level_access(&T2, page)) {
        g_tlb_stats[2]++;                               /* l2_hits */
        tlb_level_fill(&T1, page);
        return g_tlb_l2_lat;
    }
    g_tlb_stats[3]++;                                   /* walks */
    tlb_level_fill(&T2, page);
    tlb_level_fill(&T1, page);
    return g_tlb_l2_lat + g_tlb_walk_lat;
}

/* ---------------------------------------------------------------- */
/* SDC system plumbing (repro.core.system.SingleCoreSystem)          */
/* ---------------------------------------------------------------- */

/* hierarchy.extract: invalidate L1/L2/LLC; latency = max holder lat.
 * Packs latency into *lat, returns was_present. */
static int h_extract(int64_t b, int64_t *lat) {
    int present = 0;
    int64_t latency = 0;
    if (c_invalidate(&L1, b)) {
        present = 1;
        if (L1.latency > latency)
            latency = L1.latency;
    }
    if (c_invalidate(&L2, b)) {
        present = 1;
        if (L2.latency > latency)
            latency = L2.latency;
    }
    if (c_invalidate(&L3, b)) {
        present = 1;
        if (L3.latency > latency)
            latency = L3.latency;
    }
    *lat = latency;
    return present;
}

/* _probe_hierarchy_clean: returns serve latency or -1. */
static int64_t probe_clean(int64_t b) {
    Cache *levels[3] = { &L1, &L2, &L3 };
    int64_t serve = -1;
    int was_dirty = 0;
    int k;
    for (k = 0; k < 3; k++) {
        Cache *c = levels[k];
        int64_t i = c_find(c, c_set(c, b), c_tagof(c, b));
        if (i >= 0) {
            if (serve < 0)
                serve = c->latency;
            if (c->dirty[i]) {
                c->dirty[i] = 0;
                was_dirty = 1;
            }
        }
    }
    if (was_dirty)
        dram_write(b);
    return serve;
}

static void sdc_fill_block(int64_t b, int dirty) {
    int64_t disb, dissh, disdc, evb;
    int evd;
    if (dir_insert(b, dirty, &disb, &dissh, &disdc)) {
        int r = c_invalidate(&SD, disb);
        if ((r == 3) || disdc == 0)
            dram_write(disb);
    }
    if (c_fill(&SD, b, dirty, 0, &evb, &evd) == 2) {
        int rm = dir_remove_sharer(evb);
        if (evd || (rm & 1))
            dram_write(evb);
    }
}

static void sdc_prefetch(int64_t b) {
    if (!g_sdc_pf)
        return;
    if (c_contains(&SD, b) || c_contains(&L1, b) || c_contains(&L2, b)
            || c_contains(&L3, b))
        return;
    int64_t disb, dissh, disdc, evb;
    int evd;
    if (dir_insert(b, 0, &disb, &dissh, &disdc)) {
        int r = c_invalidate(&SD, disb);
        if ((r == 3) || disdc == 0)
            dram_write(disb);
    }
    if (c_fill(&SD, b, 0, 1, &evb, &evd) == 2) {
        int rm = dir_remove_sharer(evb);
        if (evd || (rm & 1))
            dram_write(evb);
    }
}

/* ---------------------------------------------------------------- */
/* Access paths.  Each returns the level code and adds to *lat.      */
/* ---------------------------------------------------------------- */

static int access_plain(int64_t b, int write, int64_t i, int64_t *lat) {
    int has_aux = g_aux_mode != 0;
    int64_t latency = L1.latency;
    int l1_hit = c_access(&L1, b, write) >= 0;
    if (g_l1_next_line) {
        int64_t pf = b + 1;
        if (!c_contains(&L1, pf))
            fill_l1(pf, 0, 1);
    }
    if (l1_hit) {
        *lat = latency;
        return L1D_LV;
    }
    latency += L2.latency;
    int l2_hit = c_access(&L2, b, 0) >= 0;
    if (g_l2_spp)
        l2_prefetch_step(b, 0);
    if (l2_hit) {
        fill_l1(b, write, 0);
        *lat = latency;
        return L2C_LV;
    }
    latency += g_llc_lat;
    if (llc_access(b, 0, has_aux, i)) {
        fill_l2(b, 0);
        fill_l1(b, write, 0);
        *lat = latency;
        return LLC_LV;
    }
    latency += dram_read(b);
    fill_llc(b, has_aux, i, 0);
    fill_l2(b, 0);
    fill_l1(b, write, 0);
    *lat = latency;
    return DRAM_LV;
}

static int access_via_sdc(int64_t b, int write, int64_t *lat) {
    int64_t latency = SD.latency, plat;
    if (c_access(&SD, b, write) >= 0) {
        if (write) {
            dir_mark_dirty(b);
            h_extract(b, &plat);
        }
        sdc_prefetch(b + 1);
        *lat = latency;
        return SDC_LV;
    }
    latency += g_sdc_miss_dir_lat;
    dir_lookup_notouch(b);
    if (write) {
        if (h_extract(b, &plat)) {
            latency += plat;
            sdc_fill_block(b, 1);
            sdc_prefetch(b + 1);
            *lat = latency;
            return L2C_LV;
        }
    } else {
        int64_t served = probe_clean(b);
        if (served >= 0) {
            latency += served;
            sdc_fill_block(b, 0);
            sdc_prefetch(b + 1);
            *lat = latency;
            return L2C_LV;
        }
    }
    latency += dram_read(b);
    sdc_fill_block(b, write);
    sdc_prefetch(b + 1);
    *lat = latency;
    return DRAM_LV;
}

static int access_regular_with_sdc(int64_t b, int write, int64_t i,
                                   int64_t *lat) {
    int has_aux = g_aux_mode != 0;
    int64_t latency = L1.latency;
    int l1_hit = c_access(&L1, b, write) >= 0;
    if (g_l1_next_line) {
        int64_t pf = b + 1;
        if (!c_contains(&L1, pf) && !c_contains(&SD, pf))
            fill_l1(pf, 0, 1);
    }
    if (l1_hit) {
        if (write && c_contains(&SD, b)) {
            c_invalidate(&SD, b);
            dir_remove_sharer(b);
        }
        *lat = latency;
        return L1D_LV;
    }
    if (c_contains(&SD, b)) {
        int64_t alt = SD.latency + g_dir_lat;
        latency += L2.latency > alt ? L2.latency : alt;
        if (write) {
            c_invalidate(&SD, b);
            dir_remove_sharer(b);
            fill_l1(b, 1, 0);
        } else {
            if (c_clear_dirty(&SD, b)) {
                dir_clear_dirty(b);
                dram_write(b);
            }
            fill_l1(b, 0, 0);
        }
        *lat = latency;
        return SDC_LV;
    }
    latency += L2.latency;
    int l2_hit = c_access(&L2, b, 0) >= 0;
    if (g_l2_spp)
        l2_prefetch_step(b, 1);
    if (l2_hit) {
        fill_l1(b, write, 0);
        *lat = latency;
        return L2C_LV;
    }
    latency += g_llc_lat;
    if (llc_access(b, 0, has_aux, i)) {
        fill_l2(b, 0);
        fill_l1(b, write, 0);
        *lat = latency;
        return LLC_LV;
    }
    latency += dram_read(b);
    fill_llc(b, has_aux, i, 0);
    fill_l2(b, 0);
    fill_l1(b, write, 0);
    *lat = latency;
    return DRAM_LV;
}

static void fill_l1_victim(int64_t b, int dirty, int pf) {
    int64_t evb, vevb;
    int evd, vevd;
    if (c_fill(&L1, b, dirty, pf, &evb, &evd) == 2) {
        /* every L1 eviction (clean too) lands in the victim cache */
        if (c_fill(&VC, evb, evd, 0, &vevb, &vevd) == 2 && vevd)
            wb_to_l2(vevb);
    }
}

static int access_victim(int64_t b, int write, int64_t i, int64_t *lat) {
    int has_aux = g_aux_mode != 0;
    int64_t latency = L1.latency;
    int l1_hit = c_access(&L1, b, write) >= 0;
    if (g_l1_next_line) {
        int64_t pf = b + 1;
        if (!c_contains(&L1, pf) && !c_contains(&VC, pf))
            fill_l1_victim(pf, 0, 1);
    }
    if (l1_hit) {
        *lat = latency;
        return L1D_LV;
    }
    latency += VC.latency;
    if (c_access(&VC, b, write) >= 0) {
        int r = c_invalidate(&VC, b);
        fill_l1_victim(b, write || (r & 1), 0);
        *lat = latency;
        return SDC_LV;
    }
    latency += L2.latency;
    int l2_hit = c_access(&L2, b, 0) >= 0;
    if (g_l2_spp)
        l2_prefetch_step(b, 0);
    if (l2_hit) {
        fill_l1_victim(b, write, 0);
        *lat = latency;
        return L2C_LV;
    }
    latency += g_llc_lat;
    if (llc_access(b, 0, has_aux, i)) {
        fill_l2(b, 0);
        fill_l1_victim(b, write, 0);
        *lat = latency;
        return LLC_LV;
    }
    latency += dram_read(b);
    fill_llc(b, has_aux, i, 0);
    fill_l2(b, 0);
    fill_l1_victim(b, write, 0);
    *lat = latency;
    return DRAM_LV;
}

static int access_lp_bypass(int64_t b, int write, int64_t *lat) {
    int64_t latency = L1.latency;
    int l1_hit = c_access(&L1, b, write) >= 0;
    if (g_l1_next_line) {
        int64_t pf = b + 1;
        if (!c_contains(&L1, pf))
            fill_l1(pf, 0, 1);
    }
    if (l1_hit) {
        *lat = latency;
        return L1D_LV;
    }
    latency += g_sdc_miss_dir_lat;
    if (c_contains(&L2, b)) {
        latency += L2.latency;
        c_access(&L2, b, 0);
        fill_l1(b, write, 0);
        *lat = latency;
        return L2C_LV;
    }
    if (llc_contains(b)) {
        latency += g_llc_lat;
        llc_access(b, 0, 0, 0);
        fill_l1(b, write, 0);
        *lat = latency;
        return LLC_LV;
    }
    latency += dram_read(b);
    fill_l1(b, write, 0);
    *lat = latency;
    return DRAM_LV;
}

/* ---------------------------------------------------------------- */
/* Core timer (repro.mem.timing.CoreTimer) — float-exact port        */
/* ---------------------------------------------------------------- */

typedef struct {
    double *a;
    int64_t len;
} Heap;

static void heap_push(Heap *h, double v) {
    int64_t pos = h->len++;
    h->a[pos] = v;
    while (pos > 0) {
        int64_t parent = (pos - 1) >> 1;
        if (h->a[pos] < h->a[parent]) {
            double t = h->a[pos];
            h->a[pos] = h->a[parent];
            h->a[parent] = t;
            pos = parent;
        } else {
            break;
        }
    }
}

static double heap_pop(Heap *h) {
    double top = h->a[0];
    h->len--;
    if (h->len > 0) {
        h->a[0] = h->a[h->len];
        int64_t pos = 0;
        for (;;) {
            int64_t l = 2 * pos + 1, r = l + 1, small = pos;
            if (l < h->len && h->a[l] < h->a[small])
                small = l;
            if (r < h->len && h->a[r] < h->a[small])
                small = r;
            if (small == pos)
                break;
            double t = h->a[pos];
            h->a[pos] = h->a[small];
            h->a[small] = t;
            pos = small;
        }
    }
    return top;
}

typedef struct {
    double issue_time, finish_time;
    int64_t instructions;
    int64_t width, rob_window, hit_latency;
    int64_t limits[2];
    Heap out[2];
    double *rob;          /* ring buffer, capacity rob_window */
    int64_t rob_head, rob_len;
} Timer;

static Timer g_timer;

static void timer_reset(void) {
    g_timer.issue_time = 0.0;
    g_timer.finish_time = 0.0;
    g_timer.instructions = 0;
    g_timer.out[0].len = 0;
    g_timer.out[1].len = 0;
    g_timer.rob_head = 0;
    g_timer.rob_len = 0;
}

static double timer_access(int64_t gap, int64_t latency, int has_dep,
                           double dep_completion, int pool) {
    Timer *t = &g_timer;
    int64_t ops = 1 + gap;
    t->instructions += ops;
    double issue = t->issue_time + (double)ops / (double)t->width;
    double start = issue;
    if (has_dep && dep_completion > start)
        start = dep_completion;
    if (t->rob_len >= t->rob_window) {
        double oldest = t->rob[t->rob_head];
        t->rob_head = (t->rob_head + 1) % t->rob_window;
        t->rob_len--;
        if (oldest > start) {
            start = oldest;
            issue = oldest;
        }
    }
    double completion;
    if (latency > t->hit_latency) {
        Heap *h = &t->out[pool];
        while (h->len && h->a[0] <= start)
            heap_pop(h);
        if (h->len >= t->limits[pool]) {
            double freed = heap_pop(h);
            start = freed;
            if (freed > issue)
                issue = freed;
        }
        completion = start + (double)latency;
        heap_push(h, completion);
    } else {
        completion = start + (double)latency;
    }
    t->issue_time = issue;
    int64_t tail = (t->rob_head + t->rob_len) % t->rob_window;
    t->rob[tail] = completion;
    t->rob_len++;
    if (completion > t->finish_time)
        t->finish_time = completion;
    return completion;
}

/* ---------------------------------------------------------------- */
/* Warm-up reset / context-switch flush                              */
/* ---------------------------------------------------------------- */

static void reset_stats(void) {
    memset(L1.stats, 0, 9 * sizeof(int64_t));
    memset(L2.stats, 0, 9 * sizeof(int64_t));
    if (g_llc_kind == 2)
        memset(g_dstats, 0, 9 * sizeof(int64_t));
    else
        memset(L3.stats, 0, 9 * sizeof(int64_t));
    memset(g_dram, 0, 5 * sizeof(int64_t));
    if (g_path == 1)
        memset(SD.stats, 0, 9 * sizeof(int64_t));
    if (g_has_lp)
        memset(g_lp_stats, 0, 5 * sizeof(int64_t));
    if (g_icfg[10])
        memset(g_tlb_stats, 0, 4 * sizeof(int64_t));
}

static void flush_sdc_state(void) {
    int64_t k;
    if (g_path == 1) {
        int64_t cnt = 0;
        for (k = 0; k < SD.sets * SD.ways; k++)
            if (SD.tags[k] >= 0 && SD.dirty[k])
                cnt++;
        g_dram[DWRITES] += cnt;
        c_flush(&SD);
        for (k = 0; k < g_dir_sets * g_dir_ways; k++)
            g_db[k] = -1;
        memset(g_docc, 0, g_dir_sets * sizeof(int64_t));
    }
    if (g_has_lp) {
        for (k = 0; k < g_lp_sets * g_lp_ways; k++)
            g_lp_tag[k] = -1;
        memset(g_lp_occ, 0, g_lp_sets * sizeof(int64_t));
    }
}

/* ---------------------------------------------------------------- */
/* Entry points                                                      */
/* ---------------------------------------------------------------- */

int64_t repro_batch_abi(void) {
    return ABI_VERSION;
}

static void bind_cache(Cache *c, const int64_t *g, void **bufs,
                       int64_t at) {
    c->sets = g[0];
    c->ways = g[1];
    c->latency = g[2];
    c->mask = g[3];
    c->bits = g[4];
    c->tags = (int64_t *)bufs[at];
    c->prio = (int64_t *)bufs[at + 1];
    c->seq = (int64_t *)bufs[at + 2];
    c->dirty = (uint8_t *)bufs[at + 3];
    c->pf = (uint8_t *)bufs[at + 4];
    c->occ = (int64_t *)bufs[at + 5];
    c->stats = (int64_t *)bufs[at + 6];
    c->clock = 0;
    c->seqc = 0;
}

static int64_t pymod(int64_t x, int64_t m) {
    int64_t r = x % m;
    return r < 0 ? r + m : r;
}

int64_t repro_batch_run(const int64_t *icfg, void **bufs) {
    g_icfg = icfg;
    g_bufs = bufs;

    const int64_t n = icfg[0];
    g_path = icfg[1];
    g_llc_kind = icfg[2];
    g_has_lp = icfg[3];
    g_use_expert = icfg[4];
    const int64_t reset_at = icfg[5];
    const int64_t warmup = icfg[6];
    const int64_t flush_every = icfg[7];
    const int64_t tele_every = icfg[8];
    const int64_t record_levels = icfg[9];
    const int64_t tlb_on = icfg[10];
    g_l1_next_line = icfg[11];
    g_l2_spp = icfg[12];
    g_sdc_pf = icfg[13];
    g_aux_mode = icfg[14];
    g_sdc_miss_dir_lat = icfg[15];

    bind_cache(&L1, icfg + 16, bufs, 0);
    bind_cache(&L2, icfg + 21, bufs, 7);
    bind_cache(&L3, icfg + 26, bufs, 14);
    bind_cache(&SD, icfg + 31, bufs, 21);
    bind_cache(&VC, icfg + 36, bufs, 28);
    g_woc_cap = icfg[41];
    g_woc_slots = icfg[42];
    g_dir_sets = icfg[43];
    g_dir_ways = icfg[44];
    g_dir_mask = icfg[45];
    g_dir_lat = icfg[46];
    g_lp_sets = icfg[47];
    g_lp_ways = icfg[48];
    g_lp_set_bits = icfg[49];
    g_lp_set_mask = icfg[50];
    g_lp_tau = icfg[51];
    g_lp_smax = icfg[52];
    g_banks = icfg[53];
    g_row_bits = icfg[54];
    g_lat_hit = icfg[55];
    g_lat_miss = icfg[56];
    g_lat_conf = icfg[57];
    T1.sets = icfg[58];
    T1.ways = icfg[59];
    T1.mask = icfg[60];
    T2.sets = icfg[61];
    T2.ways = icfg[62];
    T2.mask = icfg[63];
    g_tlb_l2_lat = icfg[64];
    g_tlb_walk_lat = icfg[65];
    const int64_t tele_capacity = icfg[71];
    g_llc_lat = icfg[72];

    g_usage = (uint8_t *)bufs[35];
    g_wb = (int64_t *)bufs[36];
    g_ww = (int64_t *)bufs[37];
    g_ws = (int64_t *)bufs[38];
    g_wlen = (int64_t *)bufs[39];
    g_dstats = (int64_t *)bufs[40];
    g_rows = (int64_t *)bufs[41];
    g_dram = (int64_t *)bufs[42];
    g_lp_tag = (int64_t *)bufs[43];
    g_lp_addr = (int64_t *)bufs[44];
    g_lp_sacc = (int64_t *)bufs[45];
    g_lp_stamp = (int64_t *)bufs[46];
    g_lp_ord = (int64_t *)bufs[47];
    g_lp_occ = (int64_t *)bufs[48];
    g_lp_stats = (int64_t *)bufs[49];
    g_db = (int64_t *)bufs[50];
    g_dsh = (int64_t *)bufs[51];
    g_ddc = (int64_t *)bufs[52];
    g_dst = (int64_t *)bufs[53];
    g_docc = (int64_t *)bufs[54];
    g_dirstats = (int64_t *)bufs[55];
    T1.page = (int64_t *)bufs[56];
    T1.stamp = (int64_t *)bufs[57];
    T1.ord = (int64_t *)bufs[58];
    T1.occ = (int64_t *)bufs[59];
    T2.page = (int64_t *)bufs[60];
    T2.stamp = (int64_t *)bufs[61];
    T2.ord = (int64_t *)bufs[62];
    T2.occ = (int64_t *)bufs[63];
    g_tlb_stats = (int64_t *)bufs[64];
    g_sp_d = (int8_t *)bufs[65];
    g_sp_c = (int16_t *)bufs[66];
    g_sp_len = (int32_t *)bufs[67];
    g_sp_tot = (int32_t *)bufs[68];
    g_tk_page = (int64_t *)bufs[69];
    g_tk_off = (int64_t *)bufs[70];
    g_tk_sig = (int64_t *)bufs[71];
    int64_t *tele = (int64_t *)bufs[72];
    int64_t *misc = (int64_t *)bufs[73];
    double *dmisc = (double *)bufs[74];
    const int64_t *blocks = (const int64_t *)bufs[75];
    const int64_t *pcs = (const int64_t *)bufs[76];
    const uint8_t *writes = (const uint8_t *)bufs[77];
    const int64_t *gaps = (const int64_t *)bufs[78];
    const int64_t *deps = (const int64_t *)bufs[79];
    const int64_t *pages = (const int64_t *)bufs[80];
    g_aux_next = (const int64_t *)bufs[81];
    g_aux_irr = (const uint8_t *)bufs[82];
    g_aux_word = (const int64_t *)bufs[83];
    g_expert_irr = (const uint8_t *)bufs[84];
    uint8_t *levels = (uint8_t *)bufs[85];
    double *completions = (double *)bufs[86];

    g_belady_clock = 0;
    g_dclock = 0;
    g_woc_hits = 0;
    g_lp_clock = 0;
    g_lp_ordc = 0;
    g_dir_clock = 0;
    T1.clock = 0;
    T1.ordc = 0;
    T2.clock = 0;
    T2.ordc = 0;
    g_tk_count = 0;

    /* timer */
    g_timer.width = icfg[66];
    g_timer.rob_window = icfg[67];
    g_timer.limits[0] = icfg[68];
    g_timer.limits[1] = icfg[69];
    g_timer.hit_latency = icfg[70];
    g_timer.out[0].a = (double *)malloc(
        (size_t)(g_timer.limits[0] + 1) * sizeof(double));
    g_timer.out[1].a = (double *)malloc(
        (size_t)(g_timer.limits[1] + 1) * sizeof(double));
    g_timer.rob = (double *)malloc(
        (size_t)g_timer.rob_window * sizeof(double));
    if (!g_timer.out[0].a || !g_timer.out[1].a || !g_timer.rob) {
        free(g_timer.out[0].a);
        free(g_timer.out[1].a);
        free(g_timer.rob);
        return 1;
    }
    timer_reset();

    int64_t tele_rows = 0;
    int64_t i;
    int64_t err = 0;

    for (i = 0; i < n; i++) {
        if (flush_every && i && i % flush_every == 0)
            flush_sdc_state();
        if (warmup && i == reset_at) {
            reset_stats();
            timer_reset();
            tele_rows = 0;      /* fresh WindowProbe: drop old windows */
        }
        const int64_t b = blocks[i];
        const int64_t pc = pcs[i];
        const int w = writes[i] ? 1 : 0;
        const int64_t tlb_lat = tlb_on ? tlb_translate(pages[i]) : 0;

        int pool = 0;
        int level;
        int64_t lat = 0;
        if (g_path == 1) {
            int irregular = g_use_expert ? (g_expert_irr[i] ? 1 : 0)
                                         : lp_predict(pc, b);
            if (irregular) {
                level = access_via_sdc(b, w, &lat);
                pool = 1;
            } else {
                level = access_regular_with_sdc(b, w, i, &lat);
            }
        } else if (g_path == 2) {
            level = access_victim(b, w, i, &lat);
        } else if (g_path == 3) {
            if (lp_predict(pc, b))
                level = access_lp_bypass(b, w, &lat);
            else
                level = access_plain(b, w, i, &lat);
        } else {
            level = access_plain(b, w, i, &lat);
        }

        const int64_t dep = deps[i];
        const int has_dep = dep >= 0;
        completions[i] = timer_access(
            gaps[i], lat + tlb_lat,
            has_dep, has_dep ? completions[dep] : 0.0, pool);
        if (record_levels)
            levels[i] = (uint8_t)level;
        if (tele_every && pymod(i + 1 - reset_at, tele_every) == 0) {
            if (tele_rows >= tele_capacity) {
                err = 2;
                break;
            }
            int64_t *row = tele + tele_rows * 11;
            row[0] = L1.stats[ACC] + (g_path == 1 ? SD.stats[ACC] : 0);
            row[1] = g_timer.instructions;
            row[2] = L1.stats[MISS];
            row[3] = L2.stats[MISS];
            row[4] = g_llc_kind == 2 ? g_dstats[MISS] : L3.stats[MISS];
            row[5] = g_path == 1 ? SD.stats[ACC] : 0;
            row[6] = g_path == 1 ? SD.stats[HIT] : 0;
            row[7] = g_has_lp ? g_lp_stats[0] : 0;
            row[8] = g_has_lp ? g_lp_stats[3] : 0;
            row[9] = g_dram[DREADS];
            row[10] = g_dram[DWRITES];
            tele_rows++;
        }
    }

    misc[0] = g_timer.instructions;
    misc[1] = tele_rows;
    misc[2] = err;
    misc[3] = L1.clock;
    misc[4] = L2.clock;
    misc[5] = L3.clock;
    misc[6] = g_belady_clock;
    misc[7] = g_dclock;
    misc[8] = SD.clock;
    misc[9] = VC.clock;
    misc[10] = g_lp_clock;
    misc[11] = g_lp_ordc;
    misc[12] = g_dir_clock;
    misc[13] = T1.clock;
    misc[14] = T2.clock;
    misc[15] = g_woc_hits;
    misc[16] = g_tk_count;
    misc[17] = L1.seqc;
    misc[18] = L2.seqc;
    misc[19] = L3.seqc;
    misc[20] = SD.seqc;
    misc[21] = VC.seqc;
    dmisc[0] = g_timer.issue_time;
    dmisc[1] = g_timer.finish_time;

    free(g_timer.out[0].a);
    free(g_timer.out[1].a);
    free(g_timer.rob);
    return err;
}
