"""Compile and load the batch simulation kernel (kernel.c).

The kernel is plain C99 compiled on demand with the system ``cc`` into
a shared object cached under ``cache_dir()/batch-kernel/<source-sha>/``,
then loaded through :mod:`ctypes` (stdlib only — no build-system or
packaging dependency).  Everything degrades gracefully: when no
compiler is available, compilation fails, or the ABI version does not
match, :func:`load_kernel` returns ``None`` and the caller falls back
to the reference Python backend.

``-ffp-contract=off`` is mandatory: the interval timer's float math
must not be fused into FMA, or completion times drift off the CPython
results by an ULP and the bit-identity contract breaks.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

ABI_VERSION = 1

_KERNEL_SOURCE = os.path.join(os.path.dirname(__file__), "kernel.c")

_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off"]

_cached_kernel = None
_load_attempted = False


def _kernel_cache_dir() -> str:
    # Late import: repro.experiments.workloads pulls numpy; keep the
    # import graph of this module minimal for tooling.
    from repro.experiments.workloads import cache_dir
    return os.path.join(cache_dir(), "batch-kernel")


def source_digest() -> str:
    """Content hash of kernel.c (keys the compiled-object cache)."""
    with open(_KERNEL_SOURCE, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()[:16]


def _find_compiler() -> str | None:
    for cc in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cc and shutil.which(cc):
            return cc
    return None


def compile_kernel(verbose: bool = False) -> str | None:
    """Compile kernel.c into the cache; returns the .so path or None.

    Compilation is atomic (build into a temp file, ``os.replace`` into
    place) so concurrent workers cannot observe a half-written object.
    """
    digest = source_digest()
    out_dir = os.path.join(_kernel_cache_dir(), digest)
    so_path = os.path.join(out_dir, "libreprobatch.so")
    if os.path.exists(so_path):
        return so_path
    cc = _find_compiler()
    if cc is None:
        return None
    os.makedirs(out_dir, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=out_dir)
    os.close(fd)
    cmd = [cc, *_CFLAGS, "-o", tmp, _KERNEL_SOURCE]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=120)
    except (OSError, subprocess.TimeoutExpired):
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return None
    if proc.returncode != 0:
        if verbose:
            print(proc.stderr)
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return None
    os.replace(tmp, so_path)
    return so_path


def load_kernel():
    """Load (compiling if needed) the batch kernel; None if unavailable.

    The handle is cached for the process; a failed attempt is cached
    too, so the hot path never retries compilation per run.
    """
    global _cached_kernel, _load_attempted
    if _load_attempted:
        return _cached_kernel
    _load_attempted = True
    if os.environ.get("REPRO_NO_BATCH_KERNEL"):
        return None
    so_path = compile_kernel()
    if so_path is None:
        return None
    try:
        lib = ctypes.CDLL(so_path)
        lib.repro_batch_abi.restype = ctypes.c_int64
        lib.repro_batch_abi.argtypes = []
        lib.repro_batch_run.restype = ctypes.c_int64
        lib.repro_batch_run.argtypes = [
            ctypes.POINTER(ctypes.c_int64),
            ctypes.POINTER(ctypes.c_void_p),
        ]
        if lib.repro_batch_abi() != ABI_VERSION:
            return None
    except OSError:
        return None
    _cached_kernel = lib
    return lib


def kernel_available() -> bool:
    return load_kernel() is not None
