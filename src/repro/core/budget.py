"""Hardware budget accounting — paper Table IV and §V-E.

All numbers derive from first principles given the Table I geometries
and 48-bit physical addresses; the CACTI-derived access energies and
latency the paper reports are carried as constants for the §V-E text.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (BLOCK_BITS, BLOCK_SIZE, PHYS_ADDR_BITS,
                          SystemConfig)


@dataclass(frozen=True)
class BudgetRow:
    name: str
    entries: int
    bits_per_entry: int
    breakdown: str

    @property
    def total_bits(self) -> int:
        return self.entries * self.bits_per_entry

    @property
    def total_kb(self) -> float:
        return self.total_bits / 8192.0


# CACTI 22 nm figures quoted in §V-E.
LP_ACCESS_TIME_NS = 0.24
LP_LEAKAGE_MW = 10.0
LP_READ_NJ, LP_WRITE_NJ = 0.010, 0.015
SDCDIR_READ_NJ, SDCDIR_WRITE_NJ = 0.014, 0.019
SDC_READ_NJ, SDC_WRITE_NJ = 0.026, 0.034


def hardware_budget(config: SystemConfig | None = None) -> list[BudgetRow]:
    """Per-core storage of SDC, LP and SDCDir (Table IV)."""
    cfg = config or SystemConfig()

    # SDC: data + tag + valid + dirty per block.  The paper's Table IV
    # stores the full block address as the tag (48 - 6 = 42 bits),
    # without subtracting set-index bits.
    sdc_blocks = cfg.sdc.num_blocks
    sdc_tag = PHYS_ADDR_BITS - BLOCK_BITS
    sdc_bits = BLOCK_SIZE * 8 + sdc_tag + 1 + 1
    rows = [BudgetRow("SDC", sdc_blocks, sdc_bits,
                      f"{BLOCK_SIZE * 8} data + {sdc_tag} tag + 1 valid "
                      f"+ 1 dirty")]

    # LP: tag + address + stride + valid (field widths from LPConfig,
    # matching Table IV's 65 + 58 + 14 + 1).
    lp = cfg.lp
    lp_bits = lp.tag_bits + lp.addr_bits + lp.stride_bits + 1
    rows.append(BudgetRow("LP", lp.entries, lp_bits,
                          f"{lp.tag_bits} tag + {lp.addr_bits} address + "
                          f"{lp.stride_bits} stride + 1 valid"))

    # SDCDir: tag + state + one sharer bit per core.
    sd = cfg.sdcdir
    sd_bits = sd.tag_bits + sd.state_bits + max(1, cfg.num_cores)
    rows.append(BudgetRow("SDCDir", sd.entries_per_core, sd_bits,
                          f"{sd.tag_bits} tag + {sd.state_bits} state + "
                          f"{max(1, cfg.num_cores)} sharer per core"))
    return rows


def total_budget_kb(config: SystemConfig | None = None) -> float:
    return sum(r.total_kb for r in hardware_budget(config))


def table4(config: SystemConfig | None = None) -> str:
    """Render Table IV as text."""
    rows = hardware_budget(config)
    lines = [f"{'':8} {'Entries':>8} {'Bits per entry':<42} {'Total KB':>9}"]
    for r in rows:
        lines.append(f"{r.name:8} {r.entries:>8} {r.breakdown:<42} "
                     f"{r.total_kb:>9.2f}")
    lines.append(f"{'Total':8} {'':8} {'':42} "
                 f"{sum(r.total_kb for r in rows):>9.2f}")
    return "\n".join(lines)


def lp_fits_in_one_cycle(config: SystemConfig | None = None) -> bool:
    """§V-E: LP access time vs the core cycle time."""
    cfg = config or SystemConfig()
    cycle_ns = 1.0 / cfg.core.frequency_ghz
    return LP_ACCESS_TIME_NS <= cycle_ns
