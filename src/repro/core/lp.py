"""The Large Predictor (LP) — paper §III-B, Figures 4 and 5.

A small PC-indexed, set-associative prediction table.  Each entry holds
``(tag, addr, s_acc, valid)``:

* ``tag``   — ``PC >> log2(#sets)``;
* ``addr``  — block address of the previous access by this PC;
* ``s_acc`` — running stride accumulator: on every access the absolute
  block-stride ``s = |v@ - addr|`` is added and the sum right-shifted by
  one (an exponential moving average with α = 1/2);
* ``valid``.

Prediction (Fig. 4): on a table hit the access is *irregular* (routed to
the SDC) when ``s_acc >= tau_glob``; on a miss it is regular and the
LRU victim entry is (re)initialized (§III-B3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LPConfig


@dataclass
class LPStats:
    lookups: int = 0
    table_hits: int = 0
    table_misses: int = 0
    predicted_irregular: int = 0
    predicted_regular: int = 0


class LargePredictor:
    """PC-indexed stride-accumulator predictor."""

    def __init__(self, config: LPConfig | None = None):
        self.config = config or LPConfig()
        self.num_sets = self.config.num_sets
        self.ways = self.config.ways
        self.tau = self.config.tau_glob
        self._set_bits = max(0, self.num_sets.bit_length() - 1)
        if 1 << self._set_bits != self.num_sets:
            raise ValueError("LP set count must be a power of two")
        # The paper writes "set index = PC mod #sets"; any real indexing
        # drops the instruction-alignment bits first (they are constant
        # zero for 4-byte-aligned PCs and would leave 3 of 4 sets
        # unused), so we index with PC >> 2.
        self._align_bits = 2
        self._s_acc_max = (1 << self.config.stride_bits) - 1
        # Per set: dict tag -> [addr, s_acc, lru_stamp]
        self.sets: list[dict[int, list[int]]] = [dict()
                                                 for _ in range(self.num_sets)]
        self._clock = 0
        self.stats = LPStats()

    def predict_and_update(self, pc: int, block_addr: int) -> bool:
        """One combined LP consult (Fig. 4) + update (Fig. 5).

        Returns True when the access is classified irregular (→ SDC).
        """
        st = self.stats
        st.lookups += 1
        idx = pc >> self._align_bits
        set_idx = idx & (self.num_sets - 1) if self.num_sets > 1 else 0
        tag = idx >> self._set_bits
        lines = self.sets[set_idx]
        self._clock += 1
        entry = lines.get(tag)
        if entry is not None:
            st.table_hits += 1
            irregular = entry[1] >= self.tau
            # Update: accumulate |stride| then right-shift (Fig. 5 step 4).
            stride = block_addr - entry[0]
            if stride < 0:
                stride = -stride
            s_acc = (entry[1] + stride) >> 1
            entry[1] = s_acc if s_acc <= self._s_acc_max else self._s_acc_max
            entry[0] = block_addr
            entry[2] = self._clock
        else:
            st.table_misses += 1
            irregular = False
            if len(lines) >= self.ways:
                victim = min(lines, key=lambda t: lines[t][2])
                del lines[victim]
            lines[tag] = [block_addr, 0, self._clock]
        if irregular:
            st.predicted_irregular += 1
        else:
            st.predicted_regular += 1
        return irregular

    def peek(self, pc: int) -> tuple[int, int] | None:
        """Read (addr, s_acc) for a PC without updating (testing aid)."""
        idx = pc >> self._align_bits
        set_idx = idx & (self.num_sets - 1) if self.num_sets > 1 else 0
        entry = self.sets[set_idx].get(idx >> self._set_bits)
        return None if entry is None else (entry[0], entry[1])
