"""The Large Predictor (LP) — paper §III-B, Figures 4 and 5.

A small PC-indexed, set-associative prediction table.  Each entry holds
``(tag, addr, s_acc, valid)``:

* ``tag``   — ``PC >> log2(#sets)``;
* ``addr``  — block address of the previous access by this PC;
* ``s_acc`` — running stride accumulator: on every access the absolute
  block-stride ``s = |v@ - addr|`` is added and the sum right-shifted by
  one (an exponential moving average with α = 1/2);
* ``valid``.

Prediction (Fig. 4): on a table hit the access is *irregular* (routed to
the SDC) when ``s_acc >= tau_glob``; on a miss it is regular and the
LRU victim entry is (re)initialized (§III-B3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import LPConfig


@dataclass
class LPStats:
    lookups: int = 0
    table_hits: int = 0
    table_misses: int = 0
    predicted_irregular: int = 0
    predicted_regular: int = 0


class LPEntry:
    """One LP table entry: fixed slots for the paper's three fields.

    ``__slots__`` keeps each entry to a compact fixed layout (no
    per-instance dict) so the per-access field reads/writes in
    :meth:`LargePredictor.predict_and_update` stay cheap.
    """

    __slots__ = ("addr", "s_acc", "stamp")

    def __init__(self, addr: int, s_acc: int, stamp: int):
        self.addr = addr
        self.s_acc = s_acc
        self.stamp = stamp

    def __getitem__(self, i: int) -> int:
        # Tuple-style view (addr, s_acc, stamp) for tests/inspection.
        return (self.addr, self.s_acc, self.stamp)[i]

    def __repr__(self) -> str:
        return (f"LPEntry(addr={self.addr}, s_acc={self.s_acc}, "
                f"stamp={self.stamp})")


class LargePredictor:
    """PC-indexed stride-accumulator predictor."""

    def __init__(self, config: LPConfig | None = None):
        self.config = config or LPConfig()
        self.num_sets = self.config.num_sets
        self.ways = self.config.ways
        self.tau = self.config.tau_glob
        self._set_bits = max(0, self.num_sets.bit_length() - 1)
        if 1 << self._set_bits != self.num_sets:
            raise ValueError("LP set count must be a power of two")
        # The paper writes "set index = PC mod #sets"; any real indexing
        # drops the instruction-alignment bits first (they are constant
        # zero for 4-byte-aligned PCs and would leave 3 of 4 sets
        # unused), so we index with PC >> 2.
        self._align_bits = 2
        self._set_mask = self.num_sets - 1
        # Tag-less ablation (sdc_lp_tagless): no tag is stored or
        # compared, so every PC mapping to a slot shares its entry
        # (aliasing is the ablation's cost).  Implemented branch-free:
        # the tag key is the PC shifted past any realistic width, i.e.
        # constantly zero, so the lookup below degenerates to "the
        # slot's single entry" without a tagless test per access.
        self._tag_shift = 200 if self.config.tagless else self._set_bits
        self._s_acc_max = (1 << self.config.stride_bits) - 1
        # Per set: dict tag -> LPEntry
        self.sets: list[dict[int, LPEntry]] = [dict()
                                               for _ in range(self.num_sets)]
        self._clock = 0
        self.stats = LPStats()

    def predict_and_update(self, pc: int, block_addr: int) -> bool:
        """One combined LP consult (Fig. 4) + update (Fig. 5).

        Returns True when the access is classified irregular (→ SDC).
        """
        st = self.stats
        st.lookups += 1
        idx = pc >> self._align_bits
        lines = self.sets[idx & self._set_mask]
        clock = self._clock + 1
        self._clock = clock
        entry = lines.get(idx >> self._tag_shift)
        if entry is not None:
            st.table_hits += 1
            s_acc = entry.s_acc
            irregular = s_acc >= self.tau
            # Update: accumulate |stride| then right-shift (Fig. 5 step 4).
            stride = block_addr - entry.addr
            if stride < 0:
                stride = -stride
            s_acc = (s_acc + stride) >> 1
            entry.s_acc = (s_acc if s_acc <= self._s_acc_max
                           else self._s_acc_max)
            entry.addr = block_addr
            entry.stamp = clock
        else:
            st.table_misses += 1
            irregular = False
            if len(lines) >= self.ways:
                victim = min(lines, key=lambda t: lines[t].stamp)
                del lines[victim]
            lines[idx >> self._tag_shift] = LPEntry(block_addr, 0, clock)
        if irregular:
            st.predicted_irregular += 1
        else:
            st.predicted_regular += 1
        return irregular

    def peek(self, pc: int) -> tuple[int, int] | None:
        """Read (addr, s_acc) for a PC without updating (testing aid)."""
        idx = pc >> self._align_bits
        entry = self.sets[idx & self._set_mask].get(idx >> self._tag_shift)
        return None if entry is None else (entry.addr, entry.s_acc)
