"""Expert Programmer baseline (paper §IV-E item v, §V-C).

The paper's expert inspects per-data-structure performance data and
marks the structures whose accesses are cache-averse for SDC routing.
We automate exactly that analysis: profile the workload on the Baseline
configuration, measure the fraction of each region's accesses that end
up served by DRAM, and classify regions above a threshold as
cache-averse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SystemConfig
from repro.mem.hierarchy import DRAM
from repro.trace.record import Trace


@dataclass(frozen=True)
class RegionProfile:
    """Per-data-structure profiling record."""

    region_id: int
    name: str
    accesses: int
    dram_accesses: int

    @property
    def dram_fraction(self) -> float:
        return self.dram_accesses / self.accesses if self.accesses else 0.0


def profile_regions(trace: Trace, config: SystemConfig | None = None,
                    levels: np.ndarray | None = None) -> list[RegionProfile]:
    """Measure the DRAM-served fraction of every region's accesses.

    ``levels`` may be supplied from a previous instrumented baseline run;
    otherwise a baseline simulation is performed here.
    """
    if levels is None:
        from repro.core.system import SingleCoreSystem
        system = SingleCoreSystem(config, variant="baseline")
        levels = system.run(trace, record_levels=True).levels
    space = trace.address_space
    rids = space.classify_addresses(trace.accesses["addr"].astype(np.int64))
    names = list(space.regions)
    out = []
    is_dram = levels == DRAM
    for rid, name in enumerate(names):
        sel = rids == rid
        out.append(RegionProfile(rid, name, int(sel.sum()),
                                 int((sel & is_dram).sum())))
    return out


def classify_regions(profiles: list[RegionProfile],
                     dram_threshold: float = 0.30,
                     min_accesses: int = 256) -> set[int]:
    """The expert's judgement: regions whose accesses mostly miss the
    whole hierarchy are cache-averse and belong in the SDC."""
    return {p.region_id for p in profiles
            if p.accesses >= min_accesses
            and p.dram_fraction >= dram_threshold}


def expert_regions_for(trace: Trace, config: SystemConfig | None = None,
                       dram_threshold: float = 0.30) -> set[int]:
    """Convenience: profile + classify in one step."""
    return classify_regions(profile_regions(trace, config),
                            dram_threshold=dram_threshold)


def expert_regions_best(trace: Trace, config: SystemConfig | None = None,
                        thresholds=(0.15, 0.30, 0.50)) -> set[int]:
    """The full Expert Programmer workflow (§IV-E item v): profile the
    workload, form candidate cache-averse sets at several DRAM-fraction
    thresholds, *measure* each candidate, and keep the fastest.

    This is what "judicious analysis of ... performance data" amounts
    to operationally — the expert iterates with a profiler until the
    classification performs.
    """
    from repro.core.system import SingleCoreSystem
    profiles = profile_regions(trace, config)
    candidates = {frozenset(classify_regions(profiles, dram_threshold=t))
                  for t in thresholds}
    candidates.add(frozenset())           # "route nothing" is always legal
    best: set[int] = set()
    best_cycles = None
    for cand in sorted(candidates, key=sorted):
        system = SingleCoreSystem(config, variant="expert",
                                  expert_regions=set(cand))
        cycles = system.run(trace).cycles
        if best_cycles is None or cycles < best_cycles:
            best_cycles = cycles
            best = set(cand)
    return best
