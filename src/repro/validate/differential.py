"""Differential validation: redundant implementations must agree.

PR 1 specialised the simulator's hot paths (dict-order LRU with O(1)
victim pick, shift/mask set indexing, the inlined ``access_fast`` walk).
Each specialisation has a generic twin that is deliberately kept alive;
this module runs the same access stream through both and asserts
bit-identical final state and stats:

* **inlined LRU vs. generic policy** — the move-to-end dict discipline
  vs. ``LRUPolicy.victim``'s priority scan;
* **``access`` vs. ``access_fast``** — the allocation-free inlined walk
  vs. the result-object API;
* **shift/mask vs. div/mod indexing** — every pow2 geometry forced onto
  the ``_set_mask == -1`` fallback paths;
* **``MultiCoreSystem(num_cores=1)`` vs. ``SingleCoreSystem``** — the
  coherence-protocol walk with one core must degenerate exactly to the
  single-core system.

Used from ``tests/test_validate.py``; any mismatch is a bug in one of
the twins (the bugfix history lives in CHANGES.md).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config import BLOCK_BITS, SystemConfig
from repro.core.multicore import MultiCoreSystem
from repro.core.system import SingleCoreSystem, SystemStats
from repro.mem.cache import SetAssocCache
from repro.mem.hierarchy import MemoryHierarchy
from repro.trace.record import Trace


class DifferentialMismatch(AssertionError):
    """Two implementations that must agree produced different results."""


# ---------------------------------------------------------------------------
# Result comparison
# ---------------------------------------------------------------------------

_STAT_FIELDS = ("instructions", "cycles", "l1d", "l2c", "llc", "sdc",
                "dram", "lp", "tlb")


def stats_delta(a: SystemStats, b: SystemStats,
                ignore: tuple[str, ...] = ()) -> list[str]:
    """Field-by-field differences between two runs (empty = identical)."""
    diffs: list[str] = []
    for field in _STAT_FIELDS:
        if field in ignore:
            continue
        va, vb = getattr(a, field), getattr(b, field)
        if dataclasses.is_dataclass(va) and dataclasses.is_dataclass(vb):
            da, db = dataclasses.asdict(va), dataclasses.asdict(vb)
            for key in sorted(set(da) | set(db)):
                if da.get(key) != db.get(key):
                    diffs.append(f"{field}.{key}: {da.get(key)} != "
                                 f"{db.get(key)}")
        elif va != vb:
            diffs.append(f"{field}: {va} != {vb}")
    return diffs


def assert_stats_equal(a: SystemStats, b: SystemStats, label: str,
                       ignore: tuple[str, ...] = ()) -> None:
    diffs = stats_delta(a, b, ignore=ignore)
    if a.levels is not None and b.levels is not None \
            and not np.array_equal(a.levels, b.levels):
        first = int(np.argmax(a.levels != b.levels))
        diffs.append(f"levels diverge first at access {first}: "
                     f"{a.levels[first]} != {b.levels[first]}")
    if diffs:
        raise DifferentialMismatch(
            f"{label}: final state diverged\n  " + "\n  ".join(diffs))


# ---------------------------------------------------------------------------
# Twin-selection helpers
# ---------------------------------------------------------------------------

def _system_caches(system: SingleCoreSystem) -> list[SetAssocCache]:
    h = system.hierarchy
    caches = [h.l1d, h.l2c]
    if isinstance(h.llc, SetAssocCache):
        caches.append(h.llc)
    for extra in (system.sdc, system.victim):
        if extra is not None:
            caches.append(extra)
    return caches


def use_generic_lru(system: SingleCoreSystem) -> SingleCoreSystem:
    """Disable the inlined-LRU fast path on every cache of a system.

    The caches keep their ``LRUPolicy`` instances; clearing ``_lru``
    routes every hit/fill/victim decision through the generic
    ``on_hit``/``on_fill``/``victim`` protocol instead of the
    move-to-end dict discipline.
    """
    for cache in _system_caches(system):
        cache._lru = None
    return system


def force_divmod(system) -> object:
    """Force the div/mod set-indexing fallback on every structure.

    Works on a :class:`SingleCoreSystem` or :class:`MultiCoreSystem`;
    flips ``_set_mask`` to the sentinel ``-1`` so every inlined
    shift/mask probe takes its generic branch.
    """
    if isinstance(system, MultiCoreSystem):
        caches: list = []
        for h in system.cores:
            caches.extend([h.l1d, h.l2c])
        if isinstance(system.llc, SetAssocCache):
            caches.append(system.llc)
        caches.extend(s for s in system.sdcs if s is not None)
        dirs = [system.sdcdir] if system.sdcdir is not None else []
    else:
        caches = _system_caches(system)
        dirs = [system.sdcdir] if system.sdcdir is not None else []
    for cache in caches:
        cache._set_mask = -1
        cache._set_bits = 0
    for d in dirs:
        d._set_mask = -1
    return system


# ---------------------------------------------------------------------------
# The differential pairs
# ---------------------------------------------------------------------------

def diff_inlined_vs_generic_lru(trace: Trace,
                                config: SystemConfig | None = None,
                                variant: str = "baseline"
                                ) -> tuple[SystemStats, SystemStats]:
    """Inlined dict-order LRU vs. the generic ``LRUPolicy`` protocol."""
    cfg = config or SystemConfig()
    fast = SingleCoreSystem(cfg, variant).run(trace, record_levels=True)
    generic_system = use_generic_lru(SingleCoreSystem(cfg, variant))
    generic = generic_system.run(trace, record_levels=True)
    assert_stats_equal(fast, generic, "inlined-LRU vs generic-LRU")
    return fast, generic


def diff_access_vs_access_fast(trace: Trace,
                               config: SystemConfig | None = None) -> None:
    """``MemoryHierarchy.access`` vs. ``access_fast``, access by access."""
    cfg = config or SystemConfig()
    via_result = MemoryHierarchy(cfg)
    via_fast = MemoryHierarchy(cfg)
    acc = trace.accesses
    blocks = (acc["addr"] >> BLOCK_BITS).astype(np.int64).tolist()
    writes = acc["write"].tolist()
    pcs = acc["pc"].astype(np.int64).tolist()
    for i, (block, write, pc) in enumerate(zip(blocks, writes, pcs)):
        res = via_result.access(block, bool(write), pc=pc)
        level, latency = via_fast.access_fast(block, bool(write), pc=pc)
        if (res.level, res.latency) != (level, latency):
            raise DifferentialMismatch(
                f"access vs access_fast: access {i} (block {block}) "
                f"served ({res.level}, {res.latency}) vs "
                f"({level}, {latency})")
    for name in ("l1d", "l2c", "llc"):
        a = dataclasses.asdict(getattr(via_result, name).stats)
        b = dataclasses.asdict(getattr(via_fast, name).stats)
        if a != b:
            raise DifferentialMismatch(
                f"access vs access_fast: {name} stats diverged: {a} != {b}")
    if dataclasses.asdict(via_result.dram.stats) != \
            dataclasses.asdict(via_fast.dram.stats):
        raise DifferentialMismatch("access vs access_fast: DRAM stats "
                                   "diverged")


def diff_pow2_vs_divmod(trace: Trace, config: SystemConfig | None = None,
                        variant: str = "baseline"
                        ) -> tuple[SystemStats, SystemStats]:
    """Shift/mask indexing vs. the forced div/mod fallback."""
    cfg = config or SystemConfig()
    pow2 = SingleCoreSystem(cfg, variant).run(trace, record_levels=True)
    fallback_system = force_divmod(SingleCoreSystem(cfg, variant))
    fallback = fallback_system.run(trace, record_levels=True)
    assert_stats_equal(pow2, fallback, "pow2 shift/mask vs div/mod")
    return pow2, fallback


def diff_multicore1_vs_single(trace: Trace,
                              config: SystemConfig | None = None,
                              variant: str = "baseline"
                              ) -> tuple[SystemStats, SystemStats]:
    """A 1-core ``MultiCoreSystem`` must degenerate to the single-core
    system: identical per-core stats, cycles and DRAM traffic."""
    cfg = dataclasses.replace(config or SystemConfig(), num_cores=1)
    single = SingleCoreSystem(cfg, variant).run(trace)
    multi = MultiCoreSystem(cfg, variant).run([trace])
    assert_stats_equal(single, multi.per_core[0],
                       f"multicore(1) vs single-core [{variant}]")
    return single, multi.per_core[0]


#: The six fig. 7 comparison variants the ref-vs-batch twin must cover.
FIG7_VARIANTS = ("baseline", "l1iso", "distill", "topt", "llc2x",
                 "sdc_lp")


def diff_ref_vs_batch(trace: Trace, config: SystemConfig | None = None,
                      variant: str = "baseline",
                      telemetry_every: int = 4096, warmup: int = 0
                      ) -> tuple[SystemStats, SystemStats]:
    """Reference Python loop vs. the compiled SoA batch backend.

    The strongest twin in the suite: the batch backend re-implements the
    whole single-core state machine in C over structure-of-arrays
    buffers (:mod:`repro.core.batch`), so *every* field of the result —
    counters, float cycles, per-access serving levels and the windowed
    telemetry payload — must be bit-identical to the reference.

    Raises :class:`RuntimeError` when the kernel cannot be loaded on
    this host (no C compiler): callers skip rather than fail, while the
    CI gate runs on hosts that are guaranteed a compiler.
    """
    from repro.core.batch import (kernel_available, try_run_batch,
                                  unsupported_reason)
    if not kernel_available():
        raise RuntimeError("batch kernel unavailable on this host")
    cfg = config or SystemConfig()
    kwargs = {}
    if variant == "expert":
        from repro.core.expert import expert_regions_for
        kwargs["expert_regions"] = expert_regions_for(trace, cfg)
    ref = SingleCoreSystem(cfg, variant, telemetry_every=telemetry_every,
                           **kwargs).run(
        trace, record_levels=True, warmup=warmup, backend="ref")
    batch_system = SingleCoreSystem(cfg, variant,
                                    telemetry_every=telemetry_every,
                                    **kwargs)
    batch = try_run_batch(batch_system, trace, record_levels=True,
                          warmup=warmup)
    if batch is None:
        raise DifferentialMismatch(
            f"ref vs batch [{variant}]: batch backend refused the run "
            f"({unsupported_reason(batch_system, trace)})")
    assert_stats_equal(ref, batch, f"ref vs batch [{variant}]")
    ta = ref.timeline.to_payload() if ref.timeline is not None else None
    tb = batch.timeline.to_payload() if batch.timeline is not None else None
    if ta != tb:
        raise DifferentialMismatch(
            f"ref vs batch [{variant}]: telemetry timeline diverged")
    return ref, batch


def run_differential_suite(trace: Trace,
                           config: SystemConfig | None = None,
                           variants: tuple[str, ...] = ("baseline",
                                                        "sdc_lp")
                           ) -> dict[str, str]:
    """Run every differential pair; returns {pair-name: "ok"}.

    Raises :class:`DifferentialMismatch` on the first divergence.
    """
    results: dict[str, str] = {}
    for variant in variants:
        diff_inlined_vs_generic_lru(trace, config, variant)
        results[f"inlined-vs-generic-lru[{variant}]"] = "ok"
        diff_pow2_vs_divmod(trace, config, variant)
        results[f"pow2-vs-divmod[{variant}]"] = "ok"
        diff_multicore1_vs_single(trace, config, variant)
        results[f"multicore1-vs-single[{variant}]"] = "ok"
    diff_access_vs_access_fast(trace, config)
    results["access-vs-access_fast"] = "ok"
    from repro.core.batch import kernel_available
    if kernel_available():
        for variant in variants:
            diff_ref_vs_batch(trace, config, variant)
            results[f"ref-vs-batch[{variant}]"] = "ok"
    return results
