"""Checkable invariants over live simulator state.

Every predicate here is something the design argues must *always* hold
(paper §III-C coherence rules, structural capacity bounds, counter
conservation laws).  The checks are written against the public state of
the structures (``resident_blocks``, ``dirty_blocks``, ``sets``,
``stats``) so they exercise exactly what the inlined hot paths mutate.

The catalogue (see docs/VALIDATION.md for the prose version):

* **Geometry** — per-set occupancy ≤ ways, total occupancy ≤ sets×ways,
  for every cache, the SDCDir and the LP table (the hardware-budget
  bounds of Table I/IV).
* **LRU order** — for LRU-managed caches the per-set dict order must be
  recency order (oldest first) and priorities strictly increasing; the
  O(1) victim pick (`next(iter(set))`) is only correct under this.
* **Stats conservation** — ``accesses == hits + misses``,
  ``writebacks ≤ evictions``, ``prefetch_hits ≤ hits``, and the fill
  ledger ``fills - evictions - invalidations == occupancy`` (valid
  while the stat window covers the whole run).
* **Level chaining** — on variants where every L1D miss walks the
  conventional hierarchy, ``L2C accesses == L1D misses`` and
  ``LLC accesses == Σ L2C misses``.
* **SDC coherence (§III-C)** — SDC contents ⊆ SDCDir contents; sharer
  bit ⇔ residency agreement per core; directory dirty owner ⇔ SDC line
  dirty bit agreement; a dirty SDC line is the single valid copy
  (no duplicate anywhere in any hierarchy, SDC or the LLC).
* **MSI single-writer (multi-core)** — a block dirty in one core's
  private caches is owned by that core in the directory and resident in
  no other core's private caches or SDCs; at most one dirty owner.
* **Directory superset (multi-core)** — a block resident in core *c*'s
  private caches has its directory sharer bit *c* set.

All raise :class:`InvariantViolation` carrying a diagnostic context
(access index / PC / block of the triggering access when the periodic
hook fired the check, plus the offending structure contents).
"""

from __future__ import annotations

from repro.mem.cache import SetAssocCache

DEFAULT_CHECK_INTERVAL = 4096
"""Accesses between periodic checks under ``REPRO_VALIDATE=1``."""

#: Variants on which every L1D miss continues into the L2C (no SDC /
#: victim-cache / bypass interception), so the level chain is strict.
STRICT_CHAIN_VARIANTS = frozenset(
    {"baseline", "topt", "distill", "l1iso", "llc2x"})


class InvariantViolation(AssertionError):
    """A machine-checked simulator invariant failed.

    Carries the invariant name, a human-readable detail line and a
    context dict (access index, PC, block, serving level, offending set
    contents — whatever the failing check could attribute).
    """

    def __init__(self, invariant: str, detail: str,
                 context: dict | None = None):
        self.invariant = invariant
        self.detail = detail
        self.context = dict(context or {})
        lines = [f"invariant violated: {invariant}", f"  {detail}"]
        for key, value in self.context.items():
            text = repr(value)
            if len(text) > 400:
                text = text[:400] + "…"
            lines.append(f"  {key} = {text}")
        super().__init__("\n".join(lines))


def _fail(invariant: str, detail: str, ctx: dict | None = None,
          **extra) -> None:
    context = dict(ctx or {})
    context.update(extra)
    raise InvariantViolation(invariant, detail, context)


# ---------------------------------------------------------------------------
# Per-structure checks
# ---------------------------------------------------------------------------

def check_cache_geometry(cache: SetAssocCache, name: str,
                         ctx: dict | None = None) -> None:
    """Occupancy bounds: per-set ≤ ways, total ≤ sets × ways."""
    if len(cache.sets) != cache.num_sets:
        _fail("cache-geometry", f"{name}: {len(cache.sets)} sets allocated, "
              f"config says {cache.num_sets}", ctx)
    for set_idx, lines in enumerate(cache.sets):
        if len(lines) > cache.ways:
            _fail("cache-occupancy",
                  f"{name}: set {set_idx} holds {len(lines)} lines, "
                  f"ways = {cache.ways}", ctx,
                  set_contents={t: list(l) for t, l in lines.items()})
    total = cache.occupancy
    if total > cache.num_sets * cache.ways:
        _fail("cache-occupancy", f"{name}: occupancy {total} exceeds "
              f"{cache.num_sets}x{cache.ways}", ctx)


def check_lru_order(cache: SetAssocCache, name: str,
                    ctx: dict | None = None) -> None:
    """For LRU caches, dict order must equal recency order.

    The inlined fast path evicts ``next(iter(set))`` in O(1); that is
    only the LRU victim if every recency bump moved the line to the
    dict's end, i.e. priorities are strictly increasing in dict order.
    """
    if cache._lru is None:
        return
    clock = cache._lru._clock
    for set_idx, lines in enumerate(cache.sets):
        prev = -1
        for tag, line in lines.items():
            if line[0] <= prev:
                _fail("lru-dict-order",
                      f"{name}: set {set_idx} dict order is not recency "
                      f"order (prio {line[0]} after {prev} at tag {tag})",
                      ctx,
                      set_contents={t: list(l) for t, l in lines.items()})
            prev = line[0]
            if line[0] > clock:
                _fail("lru-clock",
                      f"{name}: set {set_idx} tag {tag} has prio "
                      f"{line[0]} beyond the policy clock {clock}", ctx)


def check_cache_stats(cache: SetAssocCache, name: str,
                      ctx: dict | None = None,
                      ledger: bool = True) -> None:
    """Counter conservation laws for one cache."""
    s = cache.stats
    if s.hits + s.misses != s.accesses:
        _fail("stats-conservation",
              f"{name}: hits {s.hits} + misses {s.misses} != "
              f"accesses {s.accesses}", ctx)
    if s.writebacks > s.evictions:
        _fail("stats-conservation",
              f"{name}: writebacks {s.writebacks} > evictions "
              f"{s.evictions}", ctx)
    if s.prefetch_hits > s.hits:
        _fail("stats-conservation",
              f"{name}: prefetch_hits {s.prefetch_hits} > hits {s.hits}",
              ctx)
    if s.prefetch_fills > s.fills:
        _fail("stats-conservation",
              f"{name}: prefetch_fills {s.prefetch_fills} > fills "
              f"{s.fills}", ctx)
    if ledger and s.fills - s.evictions - s.invalidations != cache.occupancy:
        _fail("fill-ledger",
              f"{name}: fills {s.fills} - evictions {s.evictions} - "
              f"invalidations {s.invalidations} != occupancy "
              f"{cache.occupancy}", ctx)


def check_cache(cache, name: str, ctx: dict | None = None,
                ledger: bool = True) -> None:
    """All structural checks applicable to one cache level.

    Non-``SetAssocCache`` levels (e.g. the Distill LLC) only expose
    ``stats``; for those only the arithmetic conservation laws run.
    """
    if isinstance(cache, SetAssocCache):
        check_cache_geometry(cache, name, ctx)
        check_lru_order(cache, name, ctx)
        check_cache_stats(cache, name, ctx, ledger=ledger)
    else:
        s = cache.stats
        if s.hits + s.misses != s.accesses:
            _fail("stats-conservation",
                  f"{name}: hits {s.hits} + misses {s.misses} != "
                  f"accesses {s.accesses}", ctx)


def check_sdcdir_structure(sdcdir, ctx: dict | None = None) -> None:
    """SDCDir capacity/recency bounds (the Table IV budget is honoured
    only if the structure never exceeds its configured entry count)."""
    total = 0
    for set_idx, lines in enumerate(sdcdir.sets):
        if len(lines) > sdcdir.ways:
            _fail("sdcdir-occupancy",
                  f"SDCDir set {set_idx} holds {len(lines)} entries, "
                  f"ways = {sdcdir.ways}", ctx,
                  set_contents={b: list(e) for b, e in lines.items()})
        total += len(lines)
        prev = -1
        sharer_limit = 1 << sdcdir.num_cores
        for block, entry in lines.items():
            if entry[2] <= prev:
                _fail("sdcdir-lru-order",
                      f"SDCDir set {set_idx} dict order is not recency "
                      f"order at block {block}", ctx,
                      set_contents={b: list(e) for b, e in lines.items()})
            prev = entry[2]
            if entry[0] <= 0 or entry[0] >= sharer_limit:
                _fail("sdcdir-sharers",
                      f"SDCDir entry for block {block} has sharer bits "
                      f"{entry[0]:#b} outside (0, {sharer_limit:#b})", ctx)
            if not (-1 <= entry[1] < sdcdir.num_cores):
                _fail("sdcdir-owner",
                      f"SDCDir entry for block {block} has dirty owner "
                      f"{entry[1]} outside [-1, {sdcdir.num_cores})", ctx)
    if total > sdcdir.entries:
        _fail("sdcdir-budget", f"SDCDir holds {total} entries, budget is "
              f"{sdcdir.entries}", ctx)


def check_lp_structure(lp, ctx: dict | None = None) -> None:
    """LP table capacity bounds (Table I: entries / ways)."""
    if lp is None:
        return
    total = 0
    for set_idx, lines in enumerate(lp.sets):
        if len(lines) > lp.ways:
            _fail("lp-occupancy", f"LP set {set_idx} holds {len(lines)} "
                  f"entries, ways = {lp.ways}", ctx)
        total += len(lines)
    if total > lp.config.entries:
        _fail("lp-budget", f"LP holds {total} entries, budget is "
              f"{lp.config.entries}", ctx)


def check_clp_structure(clp, ctx: dict | None = None) -> None:
    """CLP table capacity bounds plus counter saturation range."""
    if clp is None:
        return
    total = 0
    ctr_max = clp.config.ctr_max
    for set_idx, lines in enumerate(clp.sets):
        if len(lines) > clp.ways:
            _fail("clp-occupancy", f"CLP set {set_idx} holds {len(lines)} "
                  f"entries, ways = {clp.ways}", ctx)
        total += len(lines)
        for tag, entry in lines.items():
            if not (0 <= entry.ctr <= ctr_max):
                _fail("clp-counter", f"CLP set {set_idx} tag {tag} counter "
                      f"{entry.ctr} outside [0, {ctr_max}]", ctx)
    if total > clp.config.entries:
        _fail("clp-budget", f"CLP holds {total} entries, budget is "
              f"{clp.config.entries}", ctx)


# ---------------------------------------------------------------------------
# Coherence checks
# ---------------------------------------------------------------------------

def check_sdc_coherence(sdcs: list, sdcdir, hierarchies: list, llc,
                        ctx: dict | None = None) -> None:
    """§III-C: subset rule, sharer/residency and dirty-owner agreement,
    and single-valid-copy for dirty SDC lines.

    ``sdcs``/``hierarchies`` are parallel per-core lists; ``llc`` is the
    shared LLC (or the single-core hierarchy's LLC).
    """
    tracked: dict[int, list[int]] = {}
    for lines in sdcdir.sets:
        tracked.update(lines)

    resident = [frozenset(sdc.resident_blocks()) for sdc in sdcs]
    for core, sdc in enumerate(sdcs):
        bit = 1 << core
        for block in resident[core]:
            entry = tracked.get(block)
            if entry is None:
                _fail("sdc-subset",
                      f"block {block} resident in SDC {core} but has no "
                      f"SDCDir entry", ctx, block=block,
                      set_contents={t: list(l) for t, l in
                                    sdc.sets[sdc._split(block)[0]].items()})
            elif not entry[0] & bit:
                _fail("sdc-sharer-agreement",
                      f"block {block} resident in SDC {core} but SDCDir "
                      f"sharer bits are {entry[0]:#b}", ctx, block=block,
                      entry=list(entry))
        # Dirty bits: line dirty ⇔ directory names this core as owner.
        for block in sdc.dirty_blocks():
            entry = tracked.get(block)
            if entry is None or entry[1] != core:
                _fail("sdc-dirty-owner",
                      f"block {block} dirty in SDC {core} but SDCDir "
                      f"owner is "
                      f"{'absent' if entry is None else entry[1]}",
                      ctx, block=block,
                      entry=None if entry is None else list(entry))

    # The dual single-valid-copy direction: a line dirty anywhere in a
    # conventional hierarchy must have no SDC duplicate (a write claims
    # exclusivity, so any surviving SDC copy would be stale).
    all_resident = frozenset().union(*resident) if resident else frozenset()
    dirty_sites = [(f"core{c}.{lname}", cache)
                   for c, h in enumerate(hierarchies)
                   for lname, cache in (("L1D", h.l1d), ("L2C", h.l2c))]
    if llc is not None and isinstance(llc, SetAssocCache):
        dirty_sites.append(("LLC", llc))
    for site, cache in dirty_sites:
        for block in cache.dirty_blocks():
            if block in all_resident:
                holders = [i for i, r in enumerate(resident) if block in r]
                _fail("hierarchy-dirty-exclusive",
                      f"block {block} dirty in {site} but still resident "
                      f"in SDC(s) {holders}", ctx, block=block)

    for block, entry in tracked.items():
        for core in range(len(sdcs)):
            if entry[0] & (1 << core) and block not in resident[core]:
                _fail("sdc-sharer-agreement",
                      f"SDCDir says core {core} holds block {block} but "
                      f"SDC {core} does not", ctx, block=block,
                      entry=list(entry))
        owner = entry[1]
        if owner >= 0:
            if owner >= len(sdcs) or not sdcs[owner].is_dirty(block):
                _fail("sdc-dirty-owner",
                      f"SDCDir says core {owner} dirty-owns block {block} "
                      f"but that SDC line is not dirty", ctx, block=block,
                      entry=list(entry))
            # Single valid copy: a dirty SDC line is duplicated nowhere.
            for c, h in enumerate(hierarchies):
                if h.l1d.contains(block) or h.l2c.contains(block):
                    _fail("sdc-dirty-exclusive",
                          f"block {block} dirty in SDC {owner} but also "
                          f"resident in core {c}'s private caches", ctx,
                          block=block)
            for c, other in enumerate(sdcs):
                if c != owner and block in resident[c]:
                    _fail("sdc-dirty-exclusive",
                          f"block {block} dirty in SDC {owner} but also "
                          f"resident in SDC {c}", ctx, block=block)
            if llc is not None and llc.contains(block):
                _fail("sdc-dirty-exclusive",
                      f"block {block} dirty in SDC {owner} but also "
                      f"resident in the LLC", ctx, block=block)


def check_msi_single_writer(cores: list, directory: dict, sdcs: list,
                            ctx: dict | None = None) -> None:
    """Multi-core MSI rules over the private hierarchies.

    * a dirty private line implies directory ownership by that core;
    * at most one core dirty-owns a block;
    * a dirty block is resident in no other core's private caches/SDCs;
    * any private residency implies the directory sharer bit.
    """
    dirty_owner: dict[int, int] = {}
    for c, h in enumerate(cores):
        for block in set(h.l1d.dirty_blocks()) | set(h.l2c.dirty_blocks()):
            if block in dirty_owner and dirty_owner[block] != c:
                _fail("msi-single-writer",
                      f"block {block} dirty in cores {dirty_owner[block]} "
                      f"and {c}", ctx, block=block)
            dirty_owner[block] = c
            entry = directory.get(block)
            if entry is None or entry[1] != c:
                _fail("msi-dirty-owner",
                      f"block {block} dirty in core {c} but directory "
                      f"owner is "
                      f"{'absent' if entry is None else entry[1]}",
                      ctx, block=block,
                      entry=None if entry is None else list(entry))
    for block, owner in dirty_owner.items():
        for c, h in enumerate(cores):
            if c != owner and (h.l1d.contains(block)
                               or h.l2c.contains(block)):
                _fail("msi-dirty-exclusive",
                      f"block {block} dirty in core {owner} but resident "
                      f"in core {c}'s private caches", ctx, block=block)
        for c, sdc in enumerate(sdcs):
            if sdc is not None and sdc.contains(block):
                _fail("msi-dirty-exclusive",
                      f"block {block} dirty in core {owner} but resident "
                      f"in SDC {c}", ctx, block=block)
    for c, h in enumerate(cores):
        bit = 1 << c
        for block in list(h.l1d.resident_blocks()) \
                + list(h.l2c.resident_blocks()):
            entry = directory.get(block)
            if entry is None or not entry[0] & bit:
                _fail("directory-superset",
                      f"block {block} resident in core {c}'s private "
                      f"caches but directory sharer bit {c} is clear",
                      ctx, block=block,
                      entry=None if entry is None else list(entry))


def check_level_chain(l1d, l2c, llc_accesses: int, l2_misses_total: int,
                      name: str, ctx: dict | None = None) -> None:
    """Strict-chain counting: every L1D miss becomes exactly one L2C
    access; every L2C miss becomes exactly one LLC access."""
    if l2c.stats.accesses != l1d.stats.misses:
        _fail("level-chain",
              f"{name}: L2C accesses {l2c.stats.accesses} != L1D misses "
              f"{l1d.stats.misses}", ctx)
    if llc_accesses != l2_misses_total:
        _fail("level-chain",
              f"{name}: LLC accesses {llc_accesses} != total L2C misses "
              f"{l2_misses_total}", ctx)


# ---------------------------------------------------------------------------
# Whole-system entry points (called by the run-loop hooks)
# ---------------------------------------------------------------------------

def check_single_core_system(system, ctx: dict | None = None) -> None:
    """All invariants applicable to a live :class:`SingleCoreSystem`."""
    h = system.hierarchy
    ledger = getattr(system, "_ledger_valid", True)
    check_cache(h.l1d, "L1D", ctx, ledger=ledger)
    check_cache(h.l2c, "L2C", ctx, ledger=ledger)
    check_cache(h.llc, "LLC", ctx, ledger=ledger)
    if system.victim is not None:
        check_cache(system.victim, "VC", ctx, ledger=ledger)
    check_lp_structure(system.lp, ctx)
    check_clp_structure(getattr(system, "clp", None), ctx)
    if system.variant in STRICT_CHAIN_VARIANTS:
        check_level_chain(h.l1d, h.l2c, h.llc.stats.accesses,
                          h.l2c.stats.misses, "single-core", ctx)
    if system.sdc is not None:
        check_cache(system.sdc, "SDC", ctx, ledger=ledger)
        check_sdcdir_structure(system.sdcdir, ctx)
        check_sdc_coherence([system.sdc], system.sdcdir, [h], h.llc, ctx)


def check_multicore_system(system, ctx: dict | None = None) -> None:
    """All invariants applicable to a live :class:`MultiCoreSystem`."""
    ledger = getattr(system, "_ledger_valid", True)
    l2_misses = 0
    for c, h in enumerate(system.cores):
        check_cache(h.l1d, f"core{c}.L1D", ctx, ledger=ledger)
        check_cache(h.l2c, f"core{c}.L2C", ctx, ledger=ledger)
        l2_misses += h.l2c.stats.misses
        check_lp_structure(system.lps[c], ctx)
        clps = getattr(system, "clps", None)
        if clps is not None:
            check_clp_structure(clps[c], ctx)
        if system.variant in STRICT_CHAIN_VARIANTS:
            if h.l2c.stats.accesses != h.l1d.stats.misses:
                _fail("level-chain",
                      f"core{c}: L2C accesses {h.l2c.stats.accesses} != "
                      f"L1D misses {h.l1d.stats.misses}", ctx)
    check_cache(system.llc, "LLC", ctx, ledger=ledger)
    if system.variant in STRICT_CHAIN_VARIANTS \
            and isinstance(system.llc, SetAssocCache):
        if system.llc.stats.accesses != l2_misses:
            _fail("level-chain",
                  f"LLC accesses {system.llc.stats.accesses} != total "
                  f"L2C misses {l2_misses}", ctx)
    check_msi_single_writer(system.cores, system.directory,
                            system.sdcs, ctx)
    if system.sdcdir is not None:
        for c, sdc in enumerate(system.sdcs):
            check_cache(sdc, f"core{c}.SDC", ctx, ledger=ledger)
        check_sdcdir_structure(system.sdcdir, ctx)
        check_sdc_coherence(system.sdcs, system.sdcdir, system.cores,
                            system.llc, ctx)
