"""repro.validate — machine-checked invariants and differential tests.

Two halves (see docs/VALIDATION.md):

* :mod:`repro.validate.invariants` — predicates over *live* simulator
  state (coherence subset/ownership rules, LRU recency order, stats
  conservation laws, hardware-budget bounds).  They run periodically
  from the ``SingleCoreSystem``/``MultiCoreSystem`` run loops when
  enabled via ``REPRO_VALIDATE=1`` (or ``=N`` for a custom interval) or
  the CLI's ``--check`` flag, and raise :class:`InvariantViolation`
  with a diagnostic dump on the first breach.

* :mod:`repro.validate.differential` — drives the same access stream
  through intentionally-redundant implementations (inlined-LRU fast
  path vs. generic policy, ``access`` vs. ``access_fast``, shift/mask
  vs. div/mod indexing, 1-core multi-core vs. single-core) and asserts
  bit-identical final stats.
"""

from __future__ import annotations

import os

from repro.validate.invariants import (DEFAULT_CHECK_INTERVAL,
                                       InvariantViolation,
                                       check_multicore_system,
                                       check_single_core_system)

__all__ = [
    "DEFAULT_CHECK_INTERVAL",
    "InvariantViolation",
    "check_interval",
    "check_multicore_system",
    "check_single_core_system",
]


def check_interval(explicit: int | None = None) -> int:
    """Resolve the invariant-check interval (0 = checking disabled).

    ``explicit`` (e.g. a constructor argument) wins; otherwise the
    ``REPRO_VALIDATE`` environment variable is consulted: unset/empty/
    ``0`` disables, ``1`` enables at :data:`DEFAULT_CHECK_INTERVAL`,
    any larger integer is used as the interval itself.
    """
    if explicit is not None:
        return max(0, explicit)
    raw = os.environ.get("REPRO_VALIDATE", "").strip()
    if not raw:
        return 0
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_CHECK_INTERVAL
    if value <= 0:
        return 0
    return DEFAULT_CHECK_INTERVAL if value == 1 else value
