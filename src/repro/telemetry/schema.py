"""Schema validation for telemetry artifacts.

Two formats, both validated structurally (no external JSON-Schema
dependency — the container must not need new packages):

* the **JSONL event log** written by :mod:`repro.telemetry.events` —
  every line must carry ``ts``/``run_id``/``pid``/``event`` with an
  admissible event name, plus the per-event required fields below;
* the **Chrome/Perfetto ``trace_event`` JSON** produced by
  :mod:`repro.telemetry.trace_export` — the JSON Object Format
  (``{"traceEvents": [...]}``) with per-phase required fields, per the
  Trace Event Format spec (``ph``/``ts``/``pid``/``tid``/``name``;
  ``dur`` for complete events, ``args.name`` for ``process_name``
  metadata events).

Validators return a list of human-readable error strings (empty =
valid) so CI can print every problem at once instead of dying on the
first.  ``python -m repro.telemetry.schema <file...>`` validates files
by extension and exits non-zero on the first invalid one.
"""

from __future__ import annotations

import json
import numbers
from pathlib import Path

from repro.telemetry.events import EVENT_NAMES, read_events

#: event name -> additional required fields (beyond the envelope).
EVENT_REQUIRED_FIELDS = {
    "grid_started": ("total_cells",),
    "grid_finished": ("status",),
    "shard_started": ("shard", "shard_count", "cells"),
    "shard_merged": ("shard", "shard_count", "cells"),
    "cell_queued": ("key", "label"),
    "cell_started": ("key", "label", "attempt"),
    "cell_retried": ("key", "label", "attempt", "error"),
    "cell_requeued": ("key", "label"),
    "cell_failed": ("key", "label", "attempt", "error"),
    "cell_done": ("key", "label", "source", "seconds"),
    "cell_cached": ("key", "label"),
    "cell_dedup": ("key", "label"),
    "cell_quarantined": ("key", "label"),
    "cell_exec_started": ("key", "attempt"),
    "cell_exec_finished": ("key", "attempt", "seconds", "ok"),
    "pool_rebuilt": ("rebuilds",),
    "degraded_serial": ("rebuilds",),
    # -- repro.service lifecycle (docs/SERVICE.md) --
    "service_started": ("generation", "workers"),
    "service_stopped": ("status",),
    "service_drain": (),
    "job_submitted": ("job_id", "cells"),
    "job_started": ("job_id",),
    "job_finished": ("job_id", "status"),
    "job_cancelled": ("job_id",),
    "cell_leased": ("key", "worker", "attempt"),
    "lease_renewed": ("key", "worker"),
    "lease_expired": ("key", "worker", "attempt", "reason"),
    "worker_spawned": ("worker",),
    "worker_lost": ("worker", "reason"),
}

_ENVELOPE_FIELDS = (("ts", numbers.Real), ("run_id", str),
                    ("pid", numbers.Real), ("event", str))

#: trace_event phases the exporter may emit.
_TRACE_PHASES = {"X", "i", "I", "M", "B", "E", "C"}


def validate_event(record, where: str = "event") -> list[str]:
    """Structural validation of one parsed event-log record."""
    errors = []
    if not isinstance(record, dict):
        return [f"{where}: not a JSON object"]
    for field, kind in _ENVELOPE_FIELDS:
        if field not in record:
            errors.append(f"{where}: missing required field "
                          f"{field!r}")
        elif not isinstance(record[field], kind) \
                or isinstance(record[field], bool):
            errors.append(f"{where}: field {field!r} has wrong type "
                          f"{type(record[field]).__name__}")
    name = record.get("event")
    if isinstance(name, str):
        if name not in EVENT_NAMES:
            errors.append(f"{where}: unknown event name {name!r}")
        else:
            for field in EVENT_REQUIRED_FIELDS.get(name, ()):
                if field not in record:
                    errors.append(f"{where}: {name} event missing "
                                  f"field {field!r}")
    return errors


def validate_events(records) -> list[str]:
    errors = []
    run_ids = set()
    for i, record in enumerate(records, 1):
        errors.extend(validate_event(record, f"line {i}"))
        if isinstance(record, dict) and isinstance(
                record.get("run_id"), str):
            run_ids.add(record["run_id"])
    if len(run_ids) > 1:
        errors.append(f"log mixes {len(run_ids)} run_ids: "
                      f"{sorted(run_ids)}")
    return errors


def validate_events_file(path) -> list[str]:
    try:
        records = read_events(path)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    if not records:
        return [f"{path}: empty event log"]
    return validate_events(records)


def _check_num(event: dict, field: str, i: int,
               errors: list[str]) -> None:
    v = event.get(field)
    if not isinstance(v, numbers.Real) or isinstance(v, bool):
        errors.append(f"traceEvents[{i}]: {field!r} must be a number, "
                      f"got {type(v).__name__}")


def validate_trace(obj) -> list[str]:
    """Validate a parsed Chrome ``trace_event`` JSON object."""
    if not isinstance(obj, dict):
        return ["trace root: not a JSON object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["trace root: missing 'traceEvents' array"]
    errors = []
    if not events:
        errors.append("traceEvents: empty")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"traceEvents[{i}]: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _TRACE_PHASES:
            errors.append(f"traceEvents[{i}]: bad phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            errors.append(f"traceEvents[{i}]: missing 'name'")
        _check_num(ev, "pid", i, errors)
        _check_num(ev, "tid", i, errors)
        if ph == "M":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                errors.append(f"traceEvents[{i}]: metadata event "
                              "needs a non-empty args object")
            elif ev.get("name") == "process_name" and "name" not in args:
                errors.append(f"traceEvents[{i}]: process_name "
                              "metadata needs args.name")
            continue
        _check_num(ev, "ts", i, errors)
        if ph == "X":
            _check_num(ev, "dur", i, errors)
    return errors


def validate_trace_file(path) -> list[str]:
    try:
        obj = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"{path}: {exc}"]
    return validate_trace(obj)


def main(argv=None) -> int:
    """Validate telemetry artifacts: ``.jsonl`` files as event logs,
    ``.json`` files as Chrome traces."""
    import sys
    argv = argv if argv is not None else sys.argv[1:]
    if not argv:
        print("usage: python -m repro.telemetry.schema "
              "<events.jsonl|trace.json>...", file=sys.stderr)
        return 2
    status = 0
    for arg in argv:
        validate = (validate_events_file if arg.endswith(".jsonl")
                    else validate_trace_file)
        errors = validate(arg)
        if errors:
            status = 1
            for err in errors:
                print(f"{arg}: {err}", file=sys.stderr)
        else:
            print(f"{arg}: OK")
    return status


if __name__ == "__main__":
    import sys
    sys.exit(main())
