"""repro.telemetry — windowed metrics, run logs and trace export.

The observability layer of the experiment stack (docs/OBSERVABILITY.md),
in four parts:

* :mod:`repro.telemetry.metrics` — ``Counter``/``Gauge``/``Histogram``
  and the ring-buffered windowed ``TimeSeries``, each with a no-op
  null twin so instrumented paths cost ~nothing when telemetry is off;
* :mod:`repro.telemetry.probes` — :class:`WindowProbe`/:class:`Timeline`:
  per-window L1D/L2C/LLC MPKI, SDC hit rate, LP cache-averse fraction,
  bypass fraction and DRAM traffic sampled from the run loops and
  attached to ``SystemStats.timeline``;
* :mod:`repro.telemetry.events` — run_id-correlated JSONL event logs
  for ``run_grid`` sweeps (cell queued/started/retried/cached/
  quarantined/failed, per-worker shards merged by the supervisor);
* :mod:`repro.telemetry.trace_export` — Chrome/Perfetto ``trace_event``
  export rendering a sweep as worker lanes with per-attempt cell spans.

Enablement mirrors ``repro.validate``: the ``REPRO_TELEMETRY``
environment variable (unset/``0`` off, ``1`` = default 4096-access
windows, ``N`` = N-access windows) or explicit constructor arguments;
the CLI's ``--telemetry DIR`` activates the ambient
:class:`TelemetryConfig` that ``run_grid`` picks up.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricRegistry, Stopwatch,
                                     TimeSeries, format_eta)
from repro.telemetry.probes import (TIMELINE_METRICS, Timeline,
                                    WindowProbe)

__all__ = [
    "DEFAULT_WINDOW",
    "Counter", "Gauge", "Histogram", "MetricRegistry", "Stopwatch",
    "TimeSeries", "Timeline", "WindowProbe", "TIMELINE_METRICS",
    "TelemetryConfig", "activate", "active", "deactivate",
    "default_telemetry_dir", "format_eta", "telemetry_interval",
]

#: Default windowed-sampling interval (accesses per window).
DEFAULT_WINDOW = 4096


def telemetry_interval(explicit: int | None = None) -> int:
    """Resolve the windowed-sampling interval (0 = telemetry off).

    ``explicit`` (a constructor argument) wins; otherwise
    ``REPRO_TELEMETRY`` is consulted: unset/empty/``0`` disables,
    ``1`` enables at :data:`DEFAULT_WINDOW`, any larger integer is the
    window itself.  Mirrors ``repro.validate.check_interval``.
    """
    if explicit is not None:
        return max(0, explicit)
    raw = os.environ.get("REPRO_TELEMETRY", "").strip()
    if not raw:
        return 0
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_WINDOW
    if value <= 0:
        return 0
    return DEFAULT_WINDOW if value == 1 else value


def default_telemetry_dir() -> Path:
    """Where event logs land when ``--telemetry`` gives no directory."""
    from repro.experiments.workloads import cache_dir
    return cache_dir() / "telemetry"


@dataclass(frozen=True)
class TelemetryConfig:
    """One sweep's telemetry settings.

    ``directory`` receives the JSONL event log (and is where
    ``repro trace-export`` looks); ``window`` is the per-cell
    :class:`WindowProbe` interval (0 = no timelines, events only).
    """

    directory: Path | None = None
    window: int = DEFAULT_WINDOW


_active: TelemetryConfig | None = None


def activate(config: TelemetryConfig | None) -> None:
    """Install the ambient telemetry config (None deactivates).

    ``run_grid`` consults this when its ``telemetry`` argument is not
    given, so the CLI's ``--telemetry`` flag reaches every figure
    function without threading one more parameter through each.
    """
    global _active
    _active = config


def deactivate() -> None:
    activate(None)


def active() -> TelemetryConfig | None:
    return _active
