"""Structured JSONL run logs for ``run_grid`` sweeps.

One sweep produces one ``events-<run_id>.jsonl`` file under the
telemetry directory.  Every line is a self-contained JSON object::

    {"ts": 1754822400.123456, "run_id": "20250806-...", "pid": 4242,
     "event": "cell_started", "key": "ab12...", "label": "pr.kron/sdc_lp",
     "attempt": 1}

The **supervisor** (the process running ``run_grid``) emits lifecycle
events — grid start/finish, cell queued/started/retried/failed/done/
cached/quarantined, pool rebuilds.  **Workers** additionally emit
``cell_exec_started``/``cell_exec_finished`` pairs into private shard
files (``events-<run_id>.w<pid>.jsonl`` — one writer per file, so no
interleaving or locking), which the supervisor merges into the main
log, sorted by timestamp, when the grid finishes.  The merged log is
what :mod:`repro.telemetry.trace_export` turns into a Chrome/Perfetto
trace with one lane per worker process.

Writes are line-buffered and flushed per event: a crashed sweep leaves
a valid prefix of the log, never a torn line mid-file.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

#: Every event name the schema admits (see telemetry.schema).
EVENT_NAMES = (
    "grid_started", "grid_finished",
    "shard_started", "shard_merged",
    "cell_queued", "cell_started", "cell_retried", "cell_requeued",
    "cell_failed", "cell_done", "cell_cached", "cell_dedup",
    "cell_quarantined",
    "cell_exec_started", "cell_exec_finished",
    "pool_rebuilt", "degraded_serial",
    # -- repro.service lifecycle (docs/SERVICE.md) --
    "service_started", "service_stopped", "service_drain",
    "job_submitted", "job_started", "job_finished", "job_cancelled",
    "cell_leased", "lease_renewed", "lease_expired",
    "worker_spawned", "worker_lost",
)


def file_run_id(run_id: str, shard: tuple[int, int] | None = None) -> str:
    """File-name identity of one supervisor's log: the run id, shard-
    qualified for sharded sweeps so N hosts sharing one telemetry
    directory never append to the same file."""
    if shard is None:
        return run_id
    return f"{run_id}.shard-{shard[0]}-of-{shard[1]}"


def events_path(directory, run_id: str,
                shard: tuple[int, int] | None = None) -> Path:
    return Path(directory) / f"events-{file_run_id(run_id, shard)}.jsonl"


def shard_path(directory, run_id: str, pid: int,
               shard: tuple[int, int] | None = None) -> Path:
    """Per-worker-process event file (a *worker shard* — one writer
    per file; unrelated to grid sharding, which is the ``shard``
    tuple)."""
    return Path(directory) / (f"events-{file_run_id(run_id, shard)}"
                              f".w{pid}.jsonl")


class EventLog:
    """Append-only JSONL writer bound to one (directory, run_id).

    ``shard=(I, N)`` binds the log to one grid shard: records gain a
    ``shard`` field (Perfetto lane grouping keys off it) and default
    paths carry the ``.shard-I-of-N`` infix.
    """

    def __init__(self, directory, run_id: str, path: Path | None = None,
                 shard: tuple[int, int] | None = None):
        self.run_id = run_id
        self.directory = Path(directory)
        self.shard = shard
        self.path = path if path is not None \
            else events_path(directory, run_id, shard)
        self._fh = None
        self.emitted = 0

    def _file(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def emit(self, event: str, **fields) -> None:
        record = {"ts": time.time(), "run_id": self.run_id,
                  "pid": os.getpid(), "event": event}
        if self.shard is not None:
            record["shard"] = self.shard[0]
        record.update(fields)
        fh = self._file()
        fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        fh.flush()
        self.emitted += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- shard merge (supervisor side) ---------------------------------

    def merge_worker_shards(self) -> int:
        """Fold worker shard files into the main log, globally sorted
        by timestamp; returns the number of events merged.

        Unparseable shard lines (a worker killed mid-write) are
        dropped — the main log must stay schema-valid.
        """
        records = []
        shards = sorted(self.directory.glob(
            f"events-{file_run_id(self.run_id, self.shard)}.w*.jsonl"))
        for shard in shards:
            try:
                text = shard.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in text.splitlines():
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue
        if records:
            self.close()
            try:
                main = [json.loads(line) for line in
                        self.path.read_text(encoding="utf-8")
                        .splitlines()]
            except (OSError, ValueError):
                main = []
            main.extend(records)
            main.sort(key=lambda r: r.get("ts", 0.0))
            tmp = self.path.with_name(
                f"{self.path.name}.tmp.{os.getpid()}")
            with open(tmp, "w", encoding="utf-8") as fh:
                for r in main:
                    fh.write(json.dumps(r, separators=(",", ":")) + "\n")
            os.replace(tmp, self.path)
        for shard in shards:
            try:
                shard.unlink()
            except OSError:
                pass
        return len(records)


def merge_shard_logs(directory, run_id: str) -> int:
    """Fold per-grid-shard event logs (``events-<run_id>.shard-*-of-*
    .jsonl``) into the main ``events-<run_id>.jsonl``, globally sorted
    by timestamp; returns the number of records folded in.  Folded
    shard logs are removed so a re-merge never duplicates records.
    Called by ``repro merge`` after a sharded sweep's manifests are
    validated and stitched (docs/RESILIENCE.md § Sharded sweeps)."""
    directory = Path(directory)
    main_path = events_path(directory, run_id)
    shard_logs = [p for p in
                  sorted(directory.glob(f"events-{run_id}.shard-*.jsonl"))
                  if ".w" not in p.name[len(f"events-{run_id}"):]]
    records = []
    for log in shard_logs:
        try:
            text = log.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            try:
                records.append(json.loads(line))
            except ValueError:
                continue        # torn line from a killed supervisor
    if records:
        try:
            main = [json.loads(line) for line in
                    main_path.read_text(encoding="utf-8").splitlines()]
        except (OSError, ValueError):
            main = []
        main.extend(records)
        main.sort(key=lambda r: r.get("ts", 0.0))
        tmp = main_path.with_name(f"{main_path.name}.tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            for r in main:
                fh.write(json.dumps(r, separators=(",", ":")) + "\n")
        os.replace(tmp, main_path)
    for log in shard_logs:
        try:
            log.unlink()
        except OSError:
            pass
    return len(records)


def read_events(path) -> list[dict]:
    """Parse a JSONL event log; raises on unreadable files, skips
    nothing (a malformed line is a real error for consumers)."""
    out = []
    for i, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            out.append(json.loads(line))
        except ValueError as exc:
            raise ValueError(f"{path}:{i}: bad JSONL line: {exc}") \
                from None
    return out


def latest_run_id(directory) -> str | None:
    """Run id of the newest main event log in ``directory``."""
    best: tuple[float, str] | None = None
    for p in Path(directory).glob("events-*.jsonl"):
        stem = p.name[len("events-"):-len(".jsonl")]
        if ".w" in stem:        # worker shard, not a main log
            continue
        if ".shard-" in stem:   # per-grid-shard log, merged separately
            continue
        try:
            mtime = p.stat().st_mtime
        except OSError:
            continue
        if best is None or mtime > best[0]:
            best = (mtime, stem)
    return best[1] if best else None


# -- worker-process context ------------------------------------------------

_worker_log: EventLog | None = None


def worker_init(ctx: tuple | None) -> None:
    """Pool-initializer half: arm per-worker event emission.

    ``ctx`` is ``(telemetry_dir, run_id)`` or
    ``(telemetry_dir, run_id, grid_shard)`` or None.  Each worker
    writes to its own pid-named shard file, so concurrent workers
    never share a file handle.
    """
    global _worker_log
    if ctx is None:
        _worker_log = None
        return
    directory, run_id = ctx[0], ctx[1]
    shard = ctx[2] if len(ctx) > 2 else None
    _worker_log = EventLog(directory, run_id, shard=shard,
                           path=shard_path(directory, run_id,
                                           os.getpid(), shard))


def worker_emit(event: str, **fields) -> None:
    """Emit from cell-execution code; no-op when telemetry is off.

    Never lets a telemetry failure (full disk, unlinked directory)
    take down the cell it is observing.
    """
    log = _worker_log
    if log is None:
        return
    try:
        log.emit(event, **fields)
    except OSError:
        pass
