"""Windowed probes: time-resolved metrics sampled from live simulators.

The paper's analysis (Figs. 2-5) is built on *time-resolved* cache
behaviour — MPKI and cache-averse fractions evolving across a kernel's
phases (BFS frontier expansion vs. contraction, PageRank iteration
boundaries).  A :class:`WindowProbe` recovers exactly that from the
run loops: every ``interval`` accesses it snapshots the cumulative
stat counters, differences them against the previous snapshot, and
appends one window row to a set of ring-buffered
:class:`repro.telemetry.metrics.TimeSeries`.

The resulting :class:`Timeline` travels on
``repro.core.system.SystemStats.timeline``, round-trips through
``to_payload``/``from_payload``, and is rendered by
``repro timeline`` / :mod:`repro.telemetry.render`.

Sampling is the cold path (once per few thousand accesses); the hot
path pays one falsy integer test per access when telemetry is off —
the same contract as ``repro.validate``'s ``check_every=0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.metrics import DEFAULT_CAPACITY, TimeSeries

#: Metric names a probe records per window, in render order.
#: ``l1d/l2c/llc_mpki`` are windowed misses per kilo-instruction;
#: ``sdc_hit_rate`` is the window's SDC hit fraction (0 when no SDC or
#: the SDC was idle); ``lp_irregular_frac`` is the fraction of LP
#: lookups predicted cache-averse (routed to the SDC / bypass);
#: ``bypass_frac`` is the fraction of the window's demand accesses that
#: took the bypass path (SDC accesses, or LP-irregular for the SDC-less
#: ablation); ``dram_reads``/``dram_writes`` are raw per-window DRAM
#: transfer counts.
TIMELINE_METRICS = ("l1d_mpki", "l2c_mpki", "llc_mpki", "sdc_hit_rate",
                    "lp_irregular_frac", "bypass_frac", "dram_reads",
                    "dram_writes")

TIMELINE_PAYLOAD_VERSION = 1


@dataclass
class Timeline:
    """Columnar per-window metric series for one simulation run.

    ``interval`` is the window width in demand accesses; all series in
    ``series`` have equal length (one entry per *complete* window).
    ``dropped`` counts windows evicted by the ring buffer — consumers
    see the newest ``len(self)`` of ``len(self) + dropped`` windows.
    """

    interval: int
    series: dict[str, list[float]] = field(default_factory=dict)
    instructions: list[int] = field(default_factory=list)  # per window
    dropped: int = 0

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def num_windows(self) -> int:
        return len(self.instructions)

    def metric(self, name: str) -> list[float]:
        return self.series[name]

    def to_payload(self) -> dict:
        return {
            "version": TIMELINE_PAYLOAD_VERSION,
            "interval": self.interval,
            "series": {k: list(v) for k, v in self.series.items()},
            "instructions": list(self.instructions),
            "dropped": self.dropped,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Timeline":
        if payload.get("version") != TIMELINE_PAYLOAD_VERSION:
            raise ValueError("unsupported timeline payload version "
                             f"{payload.get('version')!r}")
        return cls(interval=payload["interval"],
                   series={k: list(v)
                           for k, v in payload["series"].items()},
                   instructions=list(payload["instructions"]),
                   dropped=payload.get("dropped", 0))


@dataclass
class _Snapshot:
    """Cumulative counter values at the last window boundary."""

    accesses: int = 0
    instructions: int = 0
    l1d_misses: int = 0
    l2c_misses: int = 0
    llc_misses: int = 0
    sdc_accesses: int = 0
    sdc_hits: int = 0
    lp_lookups: int = 0
    lp_irregular: int = 0
    dram_reads: int = 0
    dram_writes: int = 0


class WindowProbe:
    """Samples one core's stat counters every ``interval`` accesses.

    The probe reads counters *through* a snapshot callable rather than
    holding references to the stat objects, because the run loops
    replace those objects wholesale on a warm-up stats reset
    (``_reset_stats``).  ``rebase()`` realigns the probe after such a
    reset so the first post-warm-up window is not polluted by warm-up
    deltas.
    """

    def __init__(self, interval: int, snap_fn,
                 capacity: int = DEFAULT_CAPACITY):
        if interval <= 0:
            raise ValueError("WindowProbe interval must be positive")
        self.interval = interval
        self._snap_fn = snap_fn
        self._prev = _Snapshot()
        self._series = {name: TimeSeries(capacity, name)
                        for name in TIMELINE_METRICS}
        self._instructions = TimeSeries(capacity, "instructions")

    def rebase(self) -> None:
        """Forget accumulated state (call after a warm-up stats reset);
        already-recorded windows are kept."""
        self._prev = _Snapshot()

    def sample(self) -> None:
        """Close the current window and append one row per metric."""
        cur: _Snapshot = self._snap_fn()
        prev = self._prev
        instr = cur.instructions - prev.instructions
        accesses = cur.accesses - prev.accesses
        kilo = instr / 1000.0
        s = self._series
        if kilo > 0:
            s["l1d_mpki"].append((cur.l1d_misses - prev.l1d_misses)
                                 / kilo)
            s["l2c_mpki"].append((cur.l2c_misses - prev.l2c_misses)
                                 / kilo)
            s["llc_mpki"].append((cur.llc_misses - prev.llc_misses)
                                 / kilo)
        else:
            s["l1d_mpki"].append(0.0)
            s["l2c_mpki"].append(0.0)
            s["llc_mpki"].append(0.0)
        sdc_acc = cur.sdc_accesses - prev.sdc_accesses
        s["sdc_hit_rate"].append(
            (cur.sdc_hits - prev.sdc_hits) / sdc_acc if sdc_acc else 0.0)
        lp_lk = cur.lp_lookups - prev.lp_lookups
        lp_irr = cur.lp_irregular - prev.lp_irregular
        s["lp_irregular_frac"].append(lp_irr / lp_lk if lp_lk else 0.0)
        bypassed = sdc_acc if sdc_acc else lp_irr
        s["bypass_frac"].append(bypassed / accesses if accesses else 0.0)
        s["dram_reads"].append(float(cur.dram_reads - prev.dram_reads))
        s["dram_writes"].append(float(cur.dram_writes - prev.dram_writes))
        self._instructions.append(instr)
        self._prev = cur

    def timeline(self) -> Timeline:
        return Timeline(
            interval=self.interval,
            series={name: ts.values()
                    for name, ts in self._series.items()},
            instructions=[int(v) for v in self._instructions.values()],
            dropped=self._instructions.dropped)


def single_core_snapshot(system, timer) -> _Snapshot:
    """Cumulative counters of a ``SingleCoreSystem`` mid-run."""
    h = system.hierarchy
    sdc = system.sdc.stats if system.sdc is not None else None
    lp = system.lp.stats if system.lp is not None else None
    return _Snapshot(
        accesses=h.l1d.stats.accesses + (sdc.accesses if sdc else 0),
        instructions=timer.instructions,
        l1d_misses=h.l1d.stats.misses,
        l2c_misses=h.l2c.stats.misses,
        llc_misses=h.llc.stats.misses,
        sdc_accesses=sdc.accesses if sdc else 0,
        sdc_hits=sdc.hits if sdc else 0,
        lp_lookups=lp.lookups if lp else 0,
        lp_irregular=lp.predicted_irregular if lp else 0,
        dram_reads=h.dram.stats.reads,
        dram_writes=h.dram.stats.writes)


def multicore_snapshot(system, core: int, timer) -> _Snapshot:
    """Cumulative counters for one core of a ``MultiCoreSystem``.

    Private structures (L1D/L2C/SDC/LP) are per-core; the LLC and DRAM
    are shared, so their windowed deltas are *system-wide* traffic over
    this core's window — exactly the contention view the multi-core
    study cares about.
    """
    h = system.cores[core]
    sdc = system.sdcs[core].stats if system.sdcs[core] is not None \
        else None
    lp = system.lps[core].stats if system.lps[core] is not None else None
    return _Snapshot(
        accesses=h.l1d.stats.accesses + (sdc.accesses if sdc else 0),
        instructions=timer.instructions,
        l1d_misses=h.l1d.stats.misses,
        l2c_misses=h.l2c.stats.misses,
        llc_misses=system.llc.stats.misses,
        sdc_accesses=sdc.accesses if sdc else 0,
        sdc_hits=sdc.hits if sdc else 0,
        lp_lookups=lp.lookups if lp else 0,
        lp_irregular=lp.predicted_irregular if lp else 0,
        dram_reads=system.dram.stats.reads,
        dram_writes=system.dram.stats.writes)
