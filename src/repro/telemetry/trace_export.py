"""Chrome/Perfetto ``trace_event`` export of a ``run_grid`` sweep.

Renders one whole sweep as a trace loadable in ``chrome://tracing`` or
https://ui.perfetto.dev: one process lane per worker pid, one span per
cell *attempt* (so a fault-retried cell shows as several distinct
spans), instant markers for cache hits/dedups/quarantines and pool
rebuilds on the supervisor lane.

Two sources, best first:

* the merged **JSONL event log** (``--telemetry`` sweeps) — spans come
  from ``cell_exec_started``/``cell_exec_finished`` pairs with real
  wall-clock boundaries, laid out on the pid that executed them;
* the **run manifest** alone (any sweep — every ``run_grid`` writes
  one) — no per-attempt timestamps survive, so completed cells are
  laid out end-to-end on a synthetic lane using their recorded wall
  seconds.  Coarser, but it means *every* historical run id can be
  visualized.

Span categories (``cat``) — filterable in the Perfetto UI: ``run``
(simulated on first attempt), ``retry`` (attempt > 1), ``failed``,
``cache``, ``dedup``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.telemetry.events import events_path, read_events

#: Synthetic tid for supervisor-lane instant markers.
SUPERVISOR_TID = 0

#: Minimum span duration (µs) so zero-length cells stay visible.
MIN_DUR_US = 1


def _meta(pid: int, name: str, sort_index: int | None = None) -> list:
    out = [{"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": name}}]
    if sort_index is not None:
        out.append({"ph": "M", "name": "process_sort_index", "pid": pid,
                    "tid": 0, "args": {"sort_index": sort_index}})
    return out


def _span(name: str, cat: str, ts_us: int, dur_us: int, pid: int,
          tid: int, **args) -> dict:
    return {"ph": "X", "name": name, "cat": cat, "ts": ts_us,
            "dur": max(MIN_DUR_US, dur_us), "pid": pid, "tid": tid,
            "args": args}


def _instant(name: str, cat: str, ts_us: int, pid: int, tid: int,
             **args) -> dict:
    return {"ph": "i", "s": "p", "name": name, "cat": cat, "ts": ts_us,
            "pid": pid, "tid": tid, "args": args}


def trace_from_events(records: list[dict]) -> dict:
    """Build a trace_event document from a merged JSONL event log."""
    if not records:
        raise ValueError("empty event log")
    t0 = min(r["ts"] for r in records)
    run_id = records[0].get("run_id", "?")

    def us(ts: float) -> int:
        return int(round((ts - t0) * 1e6))

    # key -> label from supervisor events (exec events only carry keys).
    labels: dict[str, str] = {}
    for r in records:
        if "label" in r and "key" in r:
            labels.setdefault(r["key"], r["label"])

    # Lane identity is (grid shard, pid): a merged multi-shard log
    # shows one lane *group* per shard (shard-prefixed lane names,
    # disjoint display-pid ranges), and two hosts that happened to
    # reuse an OS pid never share a lane.
    supervisor_pids = {r["pid"] for r in records
                       if r["event"] == "grid_started"}
    if not supervisor_pids:
        supervisor_pids = {records[0]["pid"]}

    def lane(r: dict) -> int:
        shard = r.get("shard")
        pid = r["pid"]
        return pid if shard is None else (shard + 1) * 10_000_000 + pid

    lanes: dict[int, str] = {}

    def lane_of(r: dict) -> int:
        shard, pid = r.get("shard"), r["pid"]
        display = lane(r)
        role = "supervisor" if pid in supervisor_pids \
            else f"worker {pid}"
        name = role if shard is None else f"shard {shard} · {role}"
        lanes.setdefault(display, name)
        return display

    events: list[dict] = []
    open_exec: dict[tuple, dict] = {}   # (lane, key, attempt) -> start
    have_exec_spans = False
    for r in records:
        ev, ts = r["event"], r["ts"]
        if ev == "cell_exec_started":
            open_exec[(lane_of(r), r["key"], r["attempt"])] = r
        elif ev == "cell_exec_finished":
            display = lane_of(r)
            start = open_exec.pop((display, r["key"], r["attempt"]),
                                  None)
            start_ts = start["ts"] if start is not None \
                else ts - r.get("seconds", 0.0)
            attempt = r["attempt"]
            cat = ("failed" if not r.get("ok", True)
                   else "retry" if attempt > 1 else "run")
            events.append(_span(
                labels.get(r["key"], r["key"][:12]), cat, us(start_ts),
                us(ts) - us(start_ts), display, r["pid"],
                key=r["key"], attempt=attempt, ok=r.get("ok", True)))
            have_exec_spans = True
        elif ev in ("cell_cached", "cell_dedup"):
            cat = "cache" if ev == "cell_cached" else "dedup"
            events.append(_span(
                r.get("label", r.get("key", "?")), cat, us(ts),
                MIN_DUR_US, lane_of(r), SUPERVISOR_TID,
                key=r.get("key"), source=cat))
        elif ev == "cell_quarantined":
            events.append(_instant(
                f"quarantined {r.get('label', '?')}", "quarantine",
                us(ts), lane_of(r), SUPERVISOR_TID,
                key=r.get("key")))
        elif ev in ("pool_rebuilt", "degraded_serial"):
            events.append(_instant(ev, "engine", us(ts),
                                   lane_of(r), SUPERVISOR_TID,
                                   rebuilds=r.get("rebuilds")))
        elif ev in ("grid_started", "grid_finished",
                    "shard_started", "shard_merged"):
            args = {}
            if "shard" in r:
                args["shard"] = r.get("shard")
                args["shard_count"] = r.get("shard_count")
            events.append(_instant(ev, "engine", us(ts),
                                   lane_of(r), SUPERVISOR_TID, **args))
    # A worker killed mid-cell leaves an unmatched exec_started: render
    # it as a failed span ending at the log's last timestamp.
    t_end = max(r["ts"] for r in records)
    for (display, key, attempt), start in open_exec.items():
        events.append(_span(labels.get(key, key[:12]), "failed",
                            us(start["ts"]), us(t_end) - us(start["ts"]),
                            display, start["pid"], key=key,
                            attempt=attempt, ok=False, truncated=True))
    if not have_exec_spans:
        # Old/minimal logs: fall back to supervisor started->done pairs.
        started: dict[str, dict] = {}
        for r in records:
            if r["event"] == "cell_started":
                started[r["key"]] = r
            elif r["event"] in ("cell_done", "cell_failed",
                                "cell_retried"):
                s = started.pop(r["key"], None)
                if s is None:
                    continue
                cat = {"cell_done": "run", "cell_failed": "failed",
                       "cell_retried": "retry"}[r["event"]]
                events.append(_span(
                    r.get("label", r["key"][:12]), cat, us(s["ts"]),
                    us(r["ts"]) - us(s["ts"]), lane_of(s),
                    SUPERVISOR_TID, key=r["key"],
                    attempt=r.get("attempt")))
    meta: list[dict] = []
    for i, (display, name) in enumerate(sorted(lanes.items())):
        meta.extend(_meta(display, name,
                          sort_index=0 if name == "supervisor"
                          else i + 1))
    return {"traceEvents": meta + events, "displayTimeUnit": "ms",
            "otherData": {"run_id": run_id, "source": "event-log"}}


def trace_from_manifest(manifest) -> dict:
    """Synthesize a trace from a run manifest's per-cell wall seconds.

    Cells are laid end-to-end (real start times are not recorded in
    the manifest); cached cells get minimum-width spans so they stay
    visible and countable.
    """
    pid = os.getpid()
    events = _meta(pid, f"run {manifest.run_id} (manifest replay)")
    cursor = 0
    for key, cell in manifest.cells.items():
        source = cell.get("source") or "run"
        status = cell.get("status")
        seconds = cell.get("seconds") or 0.0
        cat = ("failed" if status == "failed"
               else "cache" if source == "cache"
               else "retry" if cell.get("attempts", 1) > 1 else "run")
        dur = int(seconds * 1e6) if source != "cache" else MIN_DUR_US
        events.append(_span(cell.get("label", key[:12]), cat, cursor,
                            dur, pid, SUPERVISOR_TID, key=key,
                            status=status, source=source,
                            attempts=cell.get("attempts")))
        cursor += max(MIN_DUR_US, dur)
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"run_id": manifest.run_id,
                          "source": "manifest"}}


def export_trace(run_id: str, telemetry_dir=None,
                 manifest_dir=None) -> dict:
    """Best-available trace for ``run_id``: event log, else manifest."""
    if telemetry_dir is not None:
        path = events_path(telemetry_dir, run_id)
        if path.is_file():
            return trace_from_events(read_events(path))
    from repro.experiments.manifest import RunManifest
    manifest = RunManifest.load(run_id, manifest_dir)
    return trace_from_manifest(manifest)


def write_trace(trace: dict, out_path) -> Path:
    """Atomic write of a trace document; returns the final path."""
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = out_path.with_name(f"{out_path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(trace, fh, separators=(",", ":"))
        os.replace(tmp, out_path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return out_path
