"""Metrics core: counters, gauges, histograms and windowed series.

Instruments are deliberately tiny — a method call and an attribute
update — because they sit next to (never *inside*) simulator hot
loops.  Every instrument has a **null twin** with the same interface
whose methods are no-ops, and :class:`MetricRegistry` hands out one or
the other depending on whether telemetry is enabled, so instrumented
code is written once and costs approximately nothing when telemetry is
off (the same zero-cost-when-disabled contract as
``repro.validate``'s ``check_every=0``).

:class:`TimeSeries` is the windowed workhorse behind
:class:`repro.telemetry.probes.WindowProbe`: a ring buffer (bounded
``collections.deque``) of per-window samples that keeps the *newest*
``capacity`` windows and counts how many old ones it dropped, so an
arbitrarily long simulation can stay instrumented in bounded memory.
"""

from __future__ import annotations

import bisect
import time
from collections import deque

#: Default ring capacity of a :class:`TimeSeries` (windows retained).
DEFAULT_CAPACITY = 4096


class Counter:
    """Monotonically increasing count (events, accesses, bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-observed value (occupancy, queue depth, rate)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Bucketed distribution with fixed, sorted upper bounds.

    ``observe(x)`` lands in the first bucket whose bound is ``>= x``;
    values above every bound land in the implicit overflow bucket.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, bounds, name: str = ""):
        self.name = name
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("Histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile (the last
        bound for overflow observations)."""
        if not self.total:
            return 0.0
        target = q * self.total
        seen = 0
        for bound, count in zip(self.bounds, self.counts):
            seen += count
            if seen >= target:
                return bound
        return self.bounds[-1]


class TimeSeries:
    """Ring-buffered windowed series: newest ``capacity`` samples kept.

    ``append`` is O(1); once full, each append drops the oldest sample
    and bumps ``dropped`` so consumers can tell a truncated series from
    a complete one.
    """

    __slots__ = ("name", "capacity", "_ring", "dropped")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, name: str = ""):
        if capacity <= 0:
            raise ValueError("TimeSeries capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, value: float) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(value)

    def values(self) -> list:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self):
        return iter(self._ring)


class _NullInstrument:
    """No-op twin for every instrument type (one shared instance)."""

    __slots__ = ()
    name = ""
    value = 0
    total = 0
    sum = 0.0
    mean = 0.0
    dropped = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def append(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def values(self) -> list:
        return []

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def __bool__(self) -> bool:
        # Lets call sites guard larger blocks with ``if metric:``.
        return False


NULL = _NullInstrument()


class MetricRegistry:
    """Factory + namespace for instruments, real or null.

    ``MetricRegistry(enabled=False)`` hands out :data:`NULL` for every
    request, so instrumented code needs no ``if telemetry:`` branches
    of its own.  Instruments are memoized by name — asking twice
    returns the same object, which is what lets one registry be shared
    between a producer and a reporter.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: dict = {}

    def _get(self, name: str, factory):
        if not self.enabled:
            return NULL
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name))

    def histogram(self, name: str, bounds) -> Histogram:
        return self._get(name, lambda: Histogram(bounds, name))

    def series(self, name: str,
               capacity: int = DEFAULT_CAPACITY) -> TimeSeries:
        return self._get(name, lambda: TimeSeries(capacity, name))

    def snapshot(self) -> dict:
        """Flat name -> value dump of every live instrument."""
        out = {}
        for name, m in self._metrics.items():
            if isinstance(m, Counter) or isinstance(m, Gauge):
                out[name] = m.value
            elif isinstance(m, Histogram):
                out[name] = {"total": m.total, "mean": m.mean,
                             "counts": list(m.counts)}
            elif isinstance(m, TimeSeries):
                out[name] = m.values()
        return out


class Stopwatch:
    """Monotonic elapsed-time clock for rates and ETAs.

    The one clock the engine's progress/ETA math runs on, so tests can
    substitute a fake ``now`` and get deterministic output.
    """

    __slots__ = ("_now", "_t0")

    def __init__(self, now=time.monotonic):
        self._now = now
        self._t0 = now()

    def elapsed(self) -> float:
        return self._now() - self._t0

    def restart(self) -> None:
        self._t0 = self._now()


def format_eta(seconds: float) -> str:
    """Compact H:MM:SS / M:SS rendering of an ETA estimate."""
    if seconds != seconds or seconds in (float("inf"), float("-inf")):
        return "--:--"
    seconds = max(0, int(round(seconds)))
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    if h:
        return f"{h}:{m:02d}:{s:02d}"
    return f"{m}:{s:02d}"
