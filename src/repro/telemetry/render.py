"""ASCII rendering of :class:`repro.telemetry.probes.Timeline`.

``repro timeline <workload> <variant>`` feeds a simulation's windowed
metrics through :func:`render_timeline`: the primary metric gets a
multi-row bar chart (phase structure at a glance — BFS frontier
expansion/contraction, PageRank iteration boundaries), every other
metric a one-line sparkline, all annotated with min/mean/max.

Plain ASCII by design — paste-safe into CI logs, issues and e-mail.
"""

from __future__ import annotations

from repro.telemetry.probes import TIMELINE_METRICS, Timeline

#: Sparkline ramp, dimmest to brightest (space = window at series min).
RAMP = " .:-=+*#%@"

#: Rows in the primary metric's bar chart.
CHART_ROWS = 8

#: Widest chart/sparkline; longer series are bucket-averaged down.
MAX_WIDTH = 72


def _downsample(values: list[float], width: int) -> list[float]:
    """Bucket-average a series onto at most ``width`` columns."""
    n = len(values)
    if n <= width:
        return list(values)
    out = []
    for c in range(width):
        lo = c * n // width
        hi = max(lo + 1, (c + 1) * n // width)
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def _scaled(values: list[float], steps: int) -> list[int]:
    """Map values onto integer levels 0..steps-1 over their own range."""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return [0] * len(values)
    return [min(steps - 1, int((v - lo) / span * steps))
            for v in values]


def sparkline(values: list[float], width: int = MAX_WIDTH) -> str:
    if not values:
        return ""
    cols = _downsample(values, width)
    return "".join(RAMP[i] for i in _scaled(cols, len(RAMP)))


def bar_chart(values: list[float], rows: int = CHART_ROWS,
              width: int = MAX_WIDTH, indent: str = "  ") -> str:
    """Vertical multi-row bar chart with a min/max-labelled y-axis."""
    if not values:
        return ""
    cols = _downsample(values, width)
    lo, hi = min(values), max(values)
    levels = _scaled(cols, rows)
    gutter = max(len(f"{hi:.1f}"), len(f"{lo:.1f}"))
    lines = []
    for row in range(rows - 1, -1, -1):
        if row == rows - 1:
            label = f"{hi:{gutter}.1f}"
        elif row == 0:
            label = f"{lo:{gutter}.1f}"
        else:
            label = " " * gutter
        body = "".join("#" if lv >= row else " " for lv in levels)
        lines.append(f"{indent}{label} |{body}")
    lines.append(f"{indent}{' ' * gutter} +{'-' * len(cols)}")
    return "\n".join(lines)


def _stats_note(values: list[float]) -> str:
    lo, hi = min(values), max(values)
    mean = sum(values) / len(values)
    return f"min {lo:8.2f}  mean {mean:8.2f}  max {hi:8.2f}"


def render_timeline(timeline: Timeline, title: str = "",
                    primary: str = "l1d_mpki",
                    metrics=None, width: int = MAX_WIDTH) -> str:
    """Full text report for one timeline."""
    n = timeline.num_windows
    lines = []
    if title:
        lines.append(title)
    window_note = (f"{n} windows x {timeline.interval} accesses"
                   + (f" (+{timeline.dropped} older windows dropped by "
                      "the ring buffer)" if timeline.dropped else ""))
    lines.append(window_note)
    if n == 0:
        lines.append("  (no complete windows — trace shorter than one "
                     "telemetry interval)")
        return "\n".join(lines)
    names = [m for m in (metrics or TIMELINE_METRICS)
             if m in timeline.series]
    if primary in names:
        values = timeline.metric(primary)
        lines.append("")
        lines.append(f"  {primary}   {_stats_note(values)}")
        lines.append(bar_chart(values, width=width))
    lines.append("")
    pad = max(len(m) for m in names)
    for name in names:
        if name == primary:
            continue
        values = timeline.metric(name)
        lines.append(f"  {name:<{pad}} |{sparkline(values, width)}| "
                     f"{_stats_note(values)}")
    return "\n".join(lines)
