#!/usr/bin/env python3
"""SimPoint-style sampling: estimate a full run from weighted intervals.

The paper simulates 200M-instruction SimPoints of billion-instruction
workloads (§IV-C).  This example shows the same methodology on our
scale: cluster a long trace's intervals by PC histogram, simulate only
the representative intervals, and compare the weighted IPC estimate
against simulating the whole trace.

Run:  python examples/simpoint_sampling.py
"""

import time

from repro.config import scaled_config
from repro.core.system import SingleCoreSystem
from repro.graphs.generators import kronecker_graph
from repro.trace.kernels import trace_pagerank
from repro.trace.simpoint import select_simpoints, weighted_metric


def main() -> None:
    graph = kronecker_graph(14, 10, seed=3)
    trace = trace_pagerank(graph, iterations=3, max_accesses=900_000)
    cfg = scaled_config(16)
    interval = 50_000
    print(f"Trace: {len(trace):,} accesses "
          f"({len(trace) // interval} intervals of {interval:,})")

    t0 = time.time()
    full = SingleCoreSystem(cfg, "baseline").run(trace)
    t_full = time.time() - t0
    print(f"\nFull simulation:      IPC {full.ipc:.3f}   ({t_full:.1f}s)")

    t0 = time.time()
    points = select_simpoints(trace, interval, k=4, seed=1)
    ipcs = []
    for p in points:
        window = trace.slice(p.start, p.start + p.length)
        stats = SingleCoreSystem(cfg, "baseline").run(window)
        ipcs.append(stats.ipc)
        print(f"  simpoint @{p.start:>8,} weight {p.weight:.2f}: "
              f"IPC {stats.ipc:.3f}")
    est = weighted_metric(points, ipcs)
    t_sp = time.time() - t0
    print(f"SimPoint estimate:    IPC {est:.3f}   ({t_sp:.1f}s, "
          f"{t_full / max(t_sp, 1e-9):.1f}x faster)")
    print(f"Estimation error:     "
          f"{100 * abs(est - full.ipc) / full.ipc:.1f}%")


if __name__ == "__main__":
    main()
