#!/usr/bin/env python3
"""Quickstart: simulate one graph workload under Baseline and SDC+LP.

Builds a scaled Kronecker graph, traces PageRank's pull loop, runs both
designs on the scale-16 configuration, and prints the headline numbers
the paper reports (MPKI per level, IPC, speedup).

Run:  python examples/quickstart.py [kernel] [graph]
      e.g. python examples/quickstart.py cc friendster
"""

import sys

from repro import quick_compare


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "pr"
    graph = sys.argv[2] if len(sys.argv) > 2 else "kron"
    print(f"Workload: {kernel}.{graph} (medium tier, 200k-access window)")
    print("Simulating Baseline and SDC+LP ...\n")

    results = quick_compare(kernel, graph)
    base, prop = results["baseline"], results["sdc_lp"]

    header = f"{'':14}{'Baseline':>12}{'SDC+LP':>12}"
    print(header)
    print("-" * len(header))
    rows = [
        ("IPC", f"{base.ipc:.3f}", f"{prop.ipc:.3f}"),
        ("cycles", f"{base.cycles:,.0f}", f"{prop.cycles:,.0f}"),
        ("L1D MPKI", f"{base.mpki('l1d'):.1f}", f"{prop.mpki('l1d'):.1f}"),
        ("SDC MPKI", "-", f"{prop.mpki('sdc'):.1f}"),
        ("L2C MPKI", f"{base.mpki('l2c'):.1f}", f"{prop.mpki('l2c'):.1f}"),
        ("LLC MPKI", f"{base.mpki('llc'):.1f}", f"{prop.mpki('llc'):.1f}"),
        ("DRAM reads", f"{base.dram.reads:,}", f"{prop.dram.reads:,}"),
    ]
    for name, b, p in rows:
        print(f"{name:14}{b:>12}{p:>12}")

    speedup = base.cycles / prop.cycles - 1
    print(f"\nSDC+LP speedup over Baseline: {100 * speedup:+.1f}%")
    lp = prop.lp
    print(f"LP routed {lp.predicted_irregular:,} of {lp.lookups:,} "
          f"accesses ({100 * lp.predicted_irregular / lp.lookups:.1f}%) "
          f"to the SDC.")


if __name__ == "__main__":
    main()
