#!/usr/bin/env python3
"""Deep-dive: where do PageRank's memory accesses go, and why?

Walks the full pipeline on one workload, exposing the intermediate
artifacts the experiment harness usually hides:

1. build the graph and run the *reference* PageRank for ground truth;
2. generate the instrumented trace and break it down by data structure;
3. profile the Baseline run per region (the Expert Programmer's input);
4. characterize PC-local strides vs DRAM probability (the paper's
   Fig. 3 analysis) on this workload;
5. compare Baseline and SDC+LP per data structure.

Run:  python examples/pagerank_cache_analysis.py
"""

import numpy as np

from repro.config import scaled_config
from repro.core.expert import classify_regions, profile_regions
from repro.core.system import SingleCoreSystem
from repro.experiments.figures import STRIDE_BUCKETS, pc_local_strides
from repro.graphs.generators import kronecker_graph
from repro.kernels import pagerank
from repro.mem.hierarchy import DRAM
from repro.trace.kernels import trace_pagerank


def main() -> None:
    print("== 1. Build graph and run reference PageRank")
    graph = kronecker_graph(16, 12, seed=7)
    scores = pagerank(graph, max_iterations=10)
    top = np.argsort(scores)[-3:][::-1]
    print(f"   kron15: {graph.num_vertices:,} vertices, "
          f"{graph.num_edges:,} edges")
    print(f"   top-ranked vertices: {list(top)} "
          f"(scores {scores[top].round(6)})")

    print("\n== 2. Instrumented trace, by data structure")
    trace = trace_pagerank(graph, iterations=2, max_accesses=400_000)
    trace = trace.slice(len(trace) - 300_000, len(trace))
    space = trace.address_space
    rids = space.classify_addresses(trace.accesses["addr"].astype(np.int64))
    names = list(space.regions)
    for rid, name in enumerate(names):
        n = int((rids == rid).sum())
        region = space.regions[name]
        hint = "irregular" if region.irregular_hint else "regular"
        print(f"   {name:20} {n:>8,} accesses "
              f"({region.size / 1024:7.1f} KiB, {hint})")

    cfg = scaled_config(16)
    print(f"\n== 3. Baseline profile per region "
          f"(LLC = {cfg.llc.size_bytes // 1024} KiB)")
    base = SingleCoreSystem(cfg, "baseline").run(trace, record_levels=True)
    profiles = profile_regions(trace, cfg, levels=base.levels)
    for p in profiles:
        print(f"   {p.name:20} DRAM fraction {100 * p.dram_fraction:5.1f}% "
              f"({p.dram_accesses:,}/{p.accesses:,})")
    averse = classify_regions(profiles)
    print(f"   expert classification -> cache-averse regions: "
          f"{[profiles[i].name for i in sorted(averse)]}")

    print("\n== 4. Stride vs DRAM probability (paper Fig. 3 analysis)")
    strides = pc_local_strides(trace)
    is_dram = base.levels == DRAM
    for (lo, hi), label in zip(
            STRIDE_BUCKETS,
            ("0", "1", "(1,10]", "(10,1e2]", "(1e2,1e3]", "(1e3,1e4]",
             "(1e4,1e5]", "(1e5,1e6]", ">1e6")):
        sel = (strides >= 0) & (strides >= lo)
        if hi is not None:
            sel &= strides <= hi
        if sel.sum() > 50:
            print(f"   stride {label:10} P(DRAM) = "
                  f"{100 * is_dram[sel].mean():5.1f}%  "
                  f"({int(sel.sum()):,} accesses)")

    print("\n== 5. Baseline vs SDC+LP")
    prop = SingleCoreSystem(cfg, "sdc_lp").run(trace)
    print(f"   L2C MPKI {base.mpki('l2c'):6.1f} -> {prop.mpki('l2c'):6.1f}")
    print(f"   LLC MPKI {base.mpki('llc'):6.1f} -> {prop.mpki('llc'):6.1f}")
    print(f"   IPC      {base.ipc:6.3f} -> {prop.ipc:6.3f}  "
          f"({100 * (base.cycles / prop.cycles - 1):+.1f}%)")


if __name__ == "__main__":
    main()
