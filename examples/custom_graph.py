#!/usr/bin/env python3
"""Bring your own graph: file I/O -> kernels -> simulation.

Shows the workflow a downstream user follows with a real dataset
(SNAP-style edge list): load the file, run the analytics kernels for
the answers, then trace a kernel and compare memory-system designs —
including reordering the graph first.

Run:  python examples/custom_graph.py [path/to/graph.el]
      (generates a demo edge list if no path is given)
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.config import scaled_config
from repro.core.system import SingleCoreSystem
from repro.graphs import apply_order, load_edgelist, save_edgelist
from repro.graphs.generators import power_law_graph
from repro.graphs.reorder import degree_sort_order
from repro.kernels import connected_components, pagerank, triangle_count
from repro.trace.kernels import trace_pagerank


def demo_file() -> Path:
    """Write a power-law demo graph as a plain .el edge list."""
    g = power_law_graph(60_000, edge_factor=14, exponent=2.0, seed=77,
                        symmetrize=True)
    path = Path(tempfile.gettempdir()) / "repro_demo_graph.el"
    save_edgelist(g, path)
    print(f"(no input given: wrote a demo graph to {path})")
    return path


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else demo_file()
    graph = load_edgelist(path, symmetrize=True)
    print(f"Loaded {graph.name}: {graph.num_vertices:,} vertices, "
          f"{graph.num_edges:,} edges")

    print("\nAnalytics:")
    comp = connected_components(graph)
    print(f"  connected components: {len(np.unique(comp)):,}")
    scores = pagerank(graph, max_iterations=15)
    print(f"  top PageRank vertex:  {int(np.argmax(scores))} "
          f"(score {scores.max():.5f})")
    print(f"  triangles:            {triangle_count(graph):,}")

    print("\nMemory-system comparison on PageRank "
          "(scale-16 configuration):")
    cfg = scaled_config(16)
    trace = trace_pagerank(graph, iterations=2, max_accesses=450_000)
    trace = trace.slice(max(0, len(trace) - 300_000), len(trace))
    base = SingleCoreSystem(cfg, "baseline").run(trace)
    prop = SingleCoreSystem(cfg, "sdc_lp").run(trace)
    print(f"  baseline: IPC {base.ipc:.3f}  "
          f"(LLC MPKI {base.mpki('llc'):.1f})")
    print(f"  SDC+LP:   IPC {prop.ipc:.3f}  "
          f"(LLC MPKI {prop.mpki('llc'):.1f})  "
          f"speedup {100 * (base.cycles / prop.cycles - 1):+.1f}%")

    print("\nOr pre-process instead (degree reordering):")
    ordered = apply_order(graph, degree_sort_order(graph), "bydeg")
    trace2 = trace_pagerank(ordered, iterations=2, max_accesses=450_000)
    trace2 = trace2.slice(max(0, len(trace2) - 300_000), len(trace2))
    reord = SingleCoreSystem(cfg, "baseline").run(trace2)
    print(f"  reordered baseline: IPC {reord.ipc:.3f}  "
          f"speedup {100 * (base.cycles / reord.cycles - 1):+.1f}% "
          f"(after paying the preprocessing cost)")


if __name__ == "__main__":
    main()
