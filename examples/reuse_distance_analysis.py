#!/usr/bin/env python3
"""Reuse-distance analysis: the analytical *why* behind cache-averseness.

An access whose LRU reuse distance exceeds a cache's block capacity
must miss there — so the per-region reuse profile predicts which data
structures defeat the hierarchy before any simulation runs.  This
example computes reuse-distance CDFs and the Mattson miss-ratio curve
for one workload, marks the capacities of the simulated caches on it,
and cross-checks the analytical prediction against the simulator.

Run:  python examples/reuse_distance_analysis.py
"""

import numpy as np

from repro.config import scaled_config
from repro.core.system import SingleCoreSystem
from repro.graphs.generators import kronecker_graph
from repro.trace.analysis import (miss_ratio_curve, region_reuse_profile,
                                  reuse_cdf, reuse_distances)
from repro.trace.kernels import trace_pagerank


def main() -> None:
    graph = kronecker_graph(16, 10, seed=9)
    trace = trace_pagerank(graph, iterations=1, max_accesses=250_000)
    trace = trace.slice(len(trace) - 150_000, len(trace))
    cfg = scaled_config(16)
    blocks = trace.block_addrs()

    print(f"Workload: PageRank on kron16 "
          f"({graph.num_vertices:,} vertices), {len(trace):,} accesses\n")

    print("Per-region reuse profile:")
    profile = region_reuse_profile(trace)
    for name, p in profile.items():
        med = ("inf" if p["median_reuse"] == float("inf")
               else f"{p['median_reuse']:.0f}")
        print(f"  {name:20} footprint {p['footprint_blocks']:>8.0f} blocks"
              f"   median reuse distance {med:>8}"
              f"   cold {100 * p['cold_fraction']:.0f}%")

    caps = {
        "L1D": cfg.l1d.num_blocks,
        "L2C": cfg.l2c.num_blocks,
        "LLC": cfg.llc.num_blocks,
    }
    print("\nMiss-ratio curve (fully-assoc LRU, analytical):")
    points = sorted(set(list(caps.values()) + [8, 64, 16384]))
    mrc = miss_ratio_curve(blocks, points)
    names = {v: k for k, v in caps.items()}
    for cap, miss in zip(points, mrc):
        label = f"  <- {names[cap]} capacity" if cap in names else ""
        print(f"  capacity {cap:>7,} blocks: miss ratio "
              f"{100 * miss:5.1f}%{label}")

    d = reuse_distances(blocks)
    cdf = reuse_cdf(d, [caps["L1D"], caps["L2C"], caps["LLC"]])
    print("\nFraction of re-references within each cache's reach: "
          f"L1D {100 * cdf[0]:.0f}%, L2C {100 * cdf[1]:.0f}%, "
          f"LLC {100 * cdf[2]:.0f}%")

    print("\nCross-check against the set-associative simulator:")
    stats = SingleCoreSystem(cfg, "baseline").run(trace)
    analytical_llc = mrc[points.index(caps["LLC"])]
    simulated_llc = stats.llc.misses / max(1, len(trace))
    print(f"  analytical FA-LRU miss ratio at LLC capacity: "
          f"{100 * analytical_llc:5.1f}% of all accesses")
    print(f"  simulated LLC misses:                         "
          f"{100 * simulated_llc:5.1f}% of all accesses")
    print("  (the simulator's set conflicts and prefetching move the "
          "number, the regime matches)")


if __name__ == "__main__":
    main()
