#!/usr/bin/env python3
"""Design-space exploration: sweep the SDC+LP knobs on one workload.

Reproduces the spirit of the paper's §V-B on a single workload so it
runs in under a minute: SDC capacity (Fig. 10), LP table size (Fig. 11)
and the global threshold τ_glob (§V-B3), printing speedup-vs-knob
curves.

Run:  python examples/design_space_exploration.py
"""

import dataclasses

from repro.config import scaled_config
from repro.experiments.runner import run_variant, speedup
from repro.experiments.workloads import workload_trace


def bar(value: float, scale: float = 150.0) -> str:
    return "#" * max(0, int(value * scale))


def main() -> None:
    cfg = scaled_config(16)
    trace = workload_trace("cc.friendster", length=200_000)
    base = run_variant(trace, "baseline", cfg)
    print(f"Workload cc.friendster: baseline IPC {base.ipc:.3f}\n")

    print("SDC capacity (ways, latency follow §V-B1):")
    for mult, ways, lat in ((1, 2, 1), (2, 4, 3), (4, 8, 4)):
        sdc = cfg.sdc.resized(cfg.sdc.size_bytes * mult, ways=ways,
                              latency=lat)
        stats = run_variant(trace, "sdc_lp",
                            dataclasses.replace(cfg, sdc=sdc))
        sp = speedup(base, stats)
        print(f"  {sdc.size_bytes / 1024:5.2f} KiB, {lat} cyc: "
              f"{100 * sp:+6.1f}%  {bar(sp)}")

    print("\nLP entries (fully associative):")
    for entries in (8, 16, 32, 64):
        lp = dataclasses.replace(cfg.lp, entries=entries, ways=entries)
        stats = run_variant(trace, "sdc_lp",
                            dataclasses.replace(cfg, lp=lp))
        sp = speedup(base, stats)
        print(f"  {entries:3} entries: {100 * sp:+6.1f}%  {bar(sp)}")

    print("\nGlobal threshold tau_glob:")
    for tau in (0, 2, 4, 8, 16, 64, 256):
        lp = dataclasses.replace(cfg.lp, tau_glob=tau)
        stats = run_variant(trace, "sdc_lp",
                            dataclasses.replace(cfg, lp=lp))
        sp = speedup(base, stats)
        frac = stats.lp.predicted_irregular / max(1, stats.lp.lookups)
        print(f"  tau={tau:3}: {100 * sp:+6.1f}%  "
              f"(SDC share {100 * frac:4.1f}%)  {bar(sp)}")


if __name__ == "__main__":
    main()
