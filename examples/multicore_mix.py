#!/usr/bin/env python3
"""Multi-core example: a 4-thread mix on a shared LLC (paper §IV-D).

Runs one mixed workload under Baseline and SDC+LP on the 4-core system
(private L1D/L2C/SDC per core, shared LLC and DRAM) and reports the
weighted speedup exactly as the paper computes it: each core's shared
IPC is normalized by its isolated IPC on the same system.

Run:  python examples/multicore_mix.py
"""

import dataclasses

from repro.config import scaled_config
from repro.core.multicore import MultiCoreSystem
from repro.experiments.runner import run_variant
from repro.experiments.workloads import workload_trace

MIX = ("pr.kron", "cc.friendster", "bfs.urand", "tc.twitter")
LENGTH = 100_000


def weighted_ipc(cfg, variant, traces, singles):
    system = MultiCoreSystem(cfg, variant=variant)
    result = system.run(traces)
    total = 0.0
    print(f"  {variant}:")
    for name, stats in zip(MIX, result.per_core):
        rel = stats.ipc / singles[(variant, name)]
        total += rel
        print(f"    {name:16} IPC {stats.ipc:6.3f} "
              f"(isolated {singles[(variant, name)]:6.3f}, "
              f"relative {rel:5.2f})")
    print(f"    weighted IPC = {total:.3f}   "
          f"shared-LLC misses: {result.llc_misses:,}")
    return total


def main() -> None:
    cfg = dataclasses.replace(scaled_config(16), num_cores=4)
    print(f"Mix: {', '.join(MIX)}  ({LENGTH:,}-access windows)")
    traces = [workload_trace(name, length=LENGTH) for name in MIX]

    # Isolated runs: one thread with the full shared LLC to itself.
    single_cfg = dataclasses.replace(
        cfg, llc=cfg.llc.resized(cfg.llc.size_bytes * 4), num_cores=1)
    singles = {}
    for variant in ("baseline", "sdc_lp"):
        for name, trace in zip(MIX, traces):
            singles[(variant, name)] = run_variant(trace, variant,
                                                   single_cfg).ipc

    print("\nShared 4-core runs:")
    ws_base = weighted_ipc(cfg, "baseline", traces, singles)
    ws_prop = weighted_ipc(cfg, "sdc_lp", traces, singles)
    print(f"\nWeighted speedup of SDC+LP over Baseline: "
          f"{100 * (ws_prop / ws_base - 1):+.1f}%")


if __name__ == "__main__":
    main()
